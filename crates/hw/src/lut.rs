//! A 6-input look-up table — the primitive cell of Xilinx 7-series
//! fabric, and the unit every resource count in §III-D is expressed in.

use serde::{Deserialize, Serialize};

/// A 6-input, 1-output LUT holding a 64-entry truth table.
///
/// Input bit `i` of the address corresponds to input pin `i`; entry `a`
/// of the table is the output for address `a`.
///
/// # Examples
///
/// ```
/// use privehd_hw::Lut6;
///
/// let and6 = Lut6::from_fn(|bits| bits.iter().all(|&b| b));
/// assert!(and6.eval([true; 6]));
/// assert!(!and6.eval([true, true, true, true, true, false]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lut6 {
    table: u64,
}

impl Lut6 {
    /// Builds a LUT from an explicit 64-bit truth table.
    pub fn from_table(table: u64) -> Self {
        Self { table }
    }

    /// Builds a LUT by evaluating `f` on all 64 input combinations.
    pub fn from_fn<F: Fn([bool; 6]) -> bool>(f: F) -> Self {
        let mut table = 0u64;
        for addr in 0..64u64 {
            let bits = Self::address_to_bits(addr);
            if f(bits) {
                table |= 1 << addr;
            }
        }
        Self { table }
    }

    /// The majority-of-six LUT of Fig. 7(a). A 3–3 tie resolves to
    /// `tie_break` (the paper: "it breaks the tie randomly
    /// (predetermined)" — fixed at synthesis time, so a parameter here).
    pub fn majority(tie_break: bool) -> Self {
        Self::from_fn(|bits| {
            let ones = bits.iter().filter(|&&b| b).count();
            match ones.cmp(&3) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Less => false,
                std::cmp::Ordering::Equal => tie_break,
            }
        })
    }

    /// Evaluates the LUT on six input bits.
    pub fn eval(&self, bits: [bool; 6]) -> bool {
        self.table >> Self::bits_to_address(bits) & 1 == 1
    }

    /// The raw truth table.
    pub fn table(&self) -> u64 {
        self.table
    }

    fn bits_to_address(bits: [bool; 6]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    fn address_to_bits(addr: u64) -> [bool; 6] {
        let mut bits = [false; 6];
        for (i, b) in bits.iter_mut().enumerate() {
            *b = addr >> i & 1 == 1;
        }
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_round_trips_through_eval() {
        let parity = Lut6::from_fn(|b| b.iter().filter(|&&x| x).count() % 2 == 1);
        for addr in 0..64u64 {
            let bits = Lut6::address_to_bits(addr);
            let expected = bits.iter().filter(|&&x| x).count() % 2 == 1;
            assert_eq!(parity.eval(bits), expected, "addr {addr}");
        }
    }

    #[test]
    fn majority_is_correct_off_tie() {
        let maj = Lut6::majority(false);
        assert!(maj.eval([true, true, true, true, false, false]));
        assert!(!maj.eval([true, true, false, false, false, false]));
        assert!(maj.eval([true; 6]));
        assert!(!maj.eval([false; 6]));
    }

    #[test]
    fn majority_tie_break_is_respected() {
        let tie = [true, true, true, false, false, false];
        assert!(Lut6::majority(true).eval(tie));
        assert!(!Lut6::majority(false).eval(tie));
    }

    #[test]
    fn majority_is_symmetric_in_inputs() {
        // Majority only depends on the popcount, not the permutation.
        let maj = Lut6::majority(true);
        for addr in 0..64u64 {
            let bits = Lut6::address_to_bits(addr);
            let mut rotated = bits;
            rotated.rotate_left(2);
            assert_eq!(maj.eval(bits), maj.eval(rotated));
        }
    }

    #[test]
    fn table_accessor_matches_from_table() {
        let l = Lut6::from_table(0xDEAD_BEEF_0123_4567);
        assert_eq!(Lut6::from_table(l.table()), l);
    }
}
