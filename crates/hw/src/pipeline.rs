//! Bit-exact functional simulation of the full hardware encoder.
//!
//! The FPGA implementation of §III-D computes, per output dimension `j`,
//! the sign of `Σ_k (L_{v_k} ⊛ B_k)_j` using the approximate majority
//! circuit of Fig. 7(a). [`HardwareEncoder`] runs exactly that dataflow —
//! bound bit-rows from the level encoder, per-dimension majority — and is
//! validated against the software path (`encode` + bipolar quantization).
//! The paper's claim under test: the approximation costs <1% accuracy.

use privehd_core::{BipolarHv, Encoder, HdError, Hypervector, LevelEncoder, QuantScheme};

use crate::majority::MajorityCircuit;

/// Functional model of the Prive-HD FPGA encoder (bipolar output).
///
/// # Examples
///
/// ```
/// use privehd_core::{EncoderConfig, LevelEncoder};
/// use privehd_hw::HardwareEncoder;
///
/// # fn main() -> Result<(), privehd_core::HdError> {
/// let soft = LevelEncoder::new(EncoderConfig::new(24, 512).with_levels(8))?;
/// let hw = HardwareEncoder::new(soft);
/// let input: Vec<f64> = (0..24).map(|i| i as f64 / 23.0).collect();
/// let encoded = hw.encode_bipolar(&input)?;
/// assert_eq!(encoded.dim(), 512);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HardwareEncoder {
    encoder: LevelEncoder,
    circuit: MajorityCircuit,
}

impl HardwareEncoder {
    /// Wraps a software level encoder with the paper's one-stage majority
    /// circuit.
    pub fn new(encoder: LevelEncoder) -> Self {
        Self {
            encoder,
            circuit: MajorityCircuit::new(),
        }
    }

    /// Wraps with a custom circuit (e.g. [`MajorityCircuit::exact`] for
    /// the reference pipeline, or a deeper cascade for the ablation).
    pub fn with_circuit(encoder: LevelEncoder, circuit: MajorityCircuit) -> Self {
        Self { encoder, circuit }
    }

    /// The underlying software encoder.
    pub fn encoder(&self) -> &LevelEncoder {
        &self.encoder
    }

    /// The majority circuit in use.
    pub fn circuit(&self) -> &MajorityCircuit {
        &self.circuit
    }

    /// Encodes an input through the simulated hardware pipeline: bound
    /// bit-rows, then per-dimension approximate majority.
    ///
    /// # Errors
    ///
    /// Propagates [`HdError::FeatureCountMismatch`] from the encoder.
    pub fn encode_bipolar(&self, input: &[f64]) -> Result<BipolarHv, HdError> {
        let rows = self.encoder.bound_rows(input)?;
        let dim = self.encoder.dim();
        let mut signs = vec![0.0f64; dim];
        let mut column = vec![false; rows.len()];
        for (j, s) in signs.iter_mut().enumerate() {
            for (k, row) in rows.iter().enumerate() {
                column[k] = row.sign(j) > 0.0;
            }
            *s = if self.circuit.sign(&column) {
                1.0
            } else {
                -1.0
            };
        }
        Ok(BipolarHv::from_signs(&signs))
    }

    /// Encodes to a dense hypervector (`±1.0` values), the shape the
    /// classifier consumes.
    ///
    /// # Errors
    ///
    /// Propagates [`HdError::FeatureCountMismatch`] from the encoder.
    pub fn encode_dense(&self, input: &[f64]) -> Result<Hypervector, HdError> {
        Ok(self.encode_bipolar(input)?.to_dense())
    }

    /// The software reference: full-precision encode, then bipolar
    /// quantization — what the hardware approximates.
    ///
    /// # Errors
    ///
    /// Propagates encoding errors.
    pub fn software_reference(&self, input: &[f64]) -> Result<Hypervector, HdError> {
        let h = self.encoder.encode(input)?;
        Ok(QuantScheme::Bipolar.quantize(&h, 1.0))
    }

    /// Fraction of dimensions where the hardware output matches the
    /// software reference for this input (1.0 = bit-exact).
    ///
    /// # Errors
    ///
    /// Propagates encoding errors.
    pub fn agreement(&self, input: &[f64]) -> Result<f64, HdError> {
        let hw = self.encode_dense(input)?;
        let sw = self.software_reference(input)?;
        let same = hw
            .as_slice()
            .iter()
            .zip(sw.as_slice())
            .filter(|(a, b)| a == b)
            .count();
        Ok(same as f64 / hw.dim() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privehd_core::EncoderConfig;

    fn encoder(features: usize, dim: usize) -> LevelEncoder {
        LevelEncoder::new(
            EncoderConfig::new(features, dim)
                .with_levels(16)
                .with_seed(77),
        )
        .expect("valid config")
    }

    fn input(features: usize) -> Vec<f64> {
        (0..features)
            .map(|i| ((i * 13) % 16) as f64 / 15.0)
            .collect()
    }

    #[test]
    fn exact_circuit_is_bit_exact_with_software() {
        let hw = HardwareEncoder::with_circuit(encoder(30, 256), MajorityCircuit::exact());
        let agreement = hw.agreement(&input(30)).unwrap();
        assert_eq!(agreement, 1.0);
    }

    #[test]
    fn one_stage_circuit_agrees_on_most_dimensions() {
        // Encoded dimensions are centred near zero (CLT), the worst case
        // for sign approximation; ≈0.79 per-dimension agreement still
        // yields <1% end-to-end accuracy loss (integration tests).
        let hw = HardwareEncoder::new(encoder(60, 1_024));
        let agreement = hw.agreement(&input(60)).unwrap();
        assert!(agreement > 0.7, "agreement = {agreement}");
    }

    #[test]
    fn deeper_cascade_agrees_less() {
        let enc = encoder(72, 1_024);
        let one = HardwareEncoder::with_circuit(enc.clone(), MajorityCircuit::with_stages(1))
            .agreement(&input(72))
            .unwrap();
        let three = HardwareEncoder::with_circuit(enc, MajorityCircuit::with_stages(3))
            .agreement(&input(72))
            .unwrap();
        assert!(three <= one, "3-stage {three} vs 1-stage {one}");
    }

    #[test]
    fn hardware_output_is_bipolar() {
        let hw = HardwareEncoder::new(encoder(24, 200));
        let h = hw.encode_dense(&input(24)).unwrap();
        assert!(h.as_slice().iter().all(|&v| v == 1.0 || v == -1.0));
    }

    #[test]
    fn feature_mismatch_propagates() {
        let hw = HardwareEncoder::new(encoder(24, 200));
        assert!(hw.encode_bipolar(&input(23)).is_err());
    }

    #[test]
    fn hardware_encoding_preserves_similarity_structure() {
        // Two near inputs stay nearer than two far inputs, through the
        // approximate hardware path.
        let hw = HardwareEncoder::new(encoder(40, 2_048));
        let a = input(40);
        let mut b = a.clone();
        b[0] = (b[0] + 0.05).min(1.0);
        let c: Vec<f64> = a.iter().map(|v| 1.0 - v).collect();
        let ha = hw.encode_bipolar(&a).unwrap();
        let hb = hw.encode_bipolar(&b).unwrap();
        let hc = hw.encode_bipolar(&c).unwrap();
        assert!(ha.cosine(&hb).unwrap() > ha.cosine(&hc).unwrap());
    }
}
