//! The saturated adder tree for ternary values (Fig. 7b).
//!
//! Ternary dimensions need two bits each; adding three of them yields a
//! value in `[−3, +3]`, i.e. three bits — which three LUT-6 compute
//! directly (each LUT sees the six input bits `a₁a₀b₁b₀c₁c₀` and emits
//! one output bit). The partial sums then enter an adder tree whose
//! intermediate adders *keep a 3-bit datapath* by truncating the
//! least-significant bit of every 4-bit result, so the final output is a
//! scaled, saturated estimate of the true sum. Cost: `≈ 2·d_iv` LUT-6
//! versus `≈ 3·d_iv` exact (−33.3%).

use serde::{Deserialize, Serialize};

use crate::lut::Lut6;

/// Range of a signed 3-bit value.
const SAT_MIN: i32 = -4;
const SAT_MAX: i32 = 3;

/// The three LUT-6 of the first stage: bit `b` of the sum of three
/// ternary inputs encoded as 2-bit two's-complement `{−1 → 11, 0 → 00,
/// +1 → 01}` (the value `10` = −2 never occurs for ternary inputs).
fn first_stage_luts() -> [Lut6; 3] {
    let decode = |hi: bool, lo: bool| -> i32 {
        match (hi, lo) {
            (false, false) => 0,
            (false, true) => 1,
            (true, true) => -1,
            (true, false) => -2, // out-of-alphabet; still well-defined
        }
    };
    let sum_bits = |bits: [bool; 6]| -> i32 {
        decode(bits[1], bits[0]) + decode(bits[3], bits[2]) + decode(bits[5], bits[4])
    };
    [
        Lut6::from_fn(move |b| sum_bits(b) & 1 == 1),
        Lut6::from_fn(move |b| sum_bits(b) >> 1 & 1 == 1),
        Lut6::from_fn(move |b| sum_bits(b) >> 2 & 1 == 1),
    ]
}

/// Encodes a ternary value into its 2-bit `(hi, lo)` representation.
fn encode_ternary(v: i32) -> (bool, bool) {
    match v {
        0 => (false, false),
        1 => (false, true),
        -1 => (true, true),
        _ => panic!("ternary value must be -1, 0 or 1, got {v}"),
    }
}

/// The saturated adder tree of Fig. 7(b).
///
/// # Examples
///
/// ```
/// use privehd_hw::SaturatedAdderTree;
///
/// let tree = SaturatedAdderTree::new();
/// let values = vec![1i32; 30]; // all +1
/// let (estimate, exact) = tree.sum_with_reference(&values);
/// // The estimate tracks the exact sum's sign and rough magnitude.
/// assert!(estimate > 0 && exact == 30);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SaturatedAdderTree {
    luts: [Lut6; 3],
}

impl Default for SaturatedAdderTree {
    fn default() -> Self {
        Self::new()
    }
}

impl SaturatedAdderTree {
    /// Builds the tree (synthesizes the three first-stage LUTs).
    pub fn new() -> Self {
        Self {
            luts: first_stage_luts(),
        }
    }

    /// First stage via the actual LUT truth tables: sums a triple of
    /// ternary values into a 3-bit signed result.
    ///
    /// # Panics
    ///
    /// Panics if any value is outside `{−1, 0, +1}`.
    pub fn first_stage(&self, triple: [i32; 3]) -> i32 {
        let (a1, a0) = encode_ternary(triple[0]);
        let (b1, b0) = encode_ternary(triple[1]);
        let (c1, c0) = encode_ternary(triple[2]);
        let bits = [a0, a1, b0, b1, c0, c1];
        let raw = (u8::from(self.luts[0].eval(bits)))
            | (u8::from(self.luts[1].eval(bits)) << 1)
            | (u8::from(self.luts[2].eval(bits)) << 2);
        // Sign-extend 3-bit two's complement.
        if raw & 0b100 != 0 {
            raw as i32 - 8
        } else {
            raw as i32
        }
    }

    /// Sums `values ∈ {−1,0,+1}^n` through the full circuit: LUT first
    /// stage, then a saturated 3-bit adder tree that truncates the LSB at
    /// every level. Returns the *rescaled* estimate (shifted back by the
    /// number of truncating levels so it is comparable to the true sum).
    ///
    /// # Panics
    ///
    /// Panics if any value is outside `{−1, 0, +1}`.
    pub fn sum(&self, values: &[i32]) -> i64 {
        if values.is_empty() {
            return 0;
        }
        // First stage: triples → 3-bit partial sums.
        let mut level: Vec<i32> = values
            .chunks(3)
            .map(|c| {
                let mut t = [0i32; 3];
                t[..c.len()].copy_from_slice(c);
                self.first_stage(t)
            })
            .collect();
        // Saturated tree: each level halves the count and the magnitude.
        // Plain floor-truncation (`s >> 1`) biases every node −0.25 on
        // average, which accumulates across levels; a predetermined
        // alternating carry-in (cost-free in hardware, analogous to the
        // majority tie-break of Fig. 7a) dithers the rounding to near
        // zero bias.
        let mut shift = 0u32;
        while level.len() > 1 {
            level = level
                .chunks(2)
                .enumerate()
                .map(|(idx, pair)| {
                    let s = pair.iter().sum::<i32>(); // 4-bit intermediate
                    let carry = (idx & 1) as i32; // predetermined dither
                    let truncated = (s + carry) >> 1; // drop the LSB
                    truncated.clamp(SAT_MIN, SAT_MAX)
                })
                .collect();
            shift += 1;
        }
        (level[0] as i64) << shift
    }

    /// The approximate sum next to the exact one, for error analysis.
    ///
    /// # Panics
    ///
    /// Panics if any value is outside `{−1, 0, +1}`.
    pub fn sum_with_reference(&self, values: &[i32]) -> (i64, i64) {
        let exact: i64 = values.iter().map(|&v| v as i64).sum();
        (self.sum(values), exact)
    }

    /// Mean absolute relative error of the saturated sum against the
    /// exact sum over random ternary vectors of length `n` drawn with the
    /// scheme's biased probabilities (`p₀ = 1/2`).
    pub fn mean_relative_error(&self, n: usize, trials: usize, seed: u64) -> f64 {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut acc = 0.0;
        let mut counted = 0usize;
        for _ in 0..trials {
            let values: Vec<i32> = (0..n)
                .map(|_| {
                    let u: f64 = rng.gen();
                    if u < 0.25 {
                        -1
                    } else if u < 0.75 {
                        0
                    } else {
                        1
                    }
                })
                .collect();
            let (approx, exact) = self.sum_with_reference(&values);
            if exact != 0 {
                acc += ((approx - exact).abs() as f64) / (exact.abs() as f64).max(1.0);
                counted += 1;
            }
        }
        if counted == 0 {
            0.0
        } else {
            acc / counted as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_stage_is_exact_for_all_triples() {
        let tree = SaturatedAdderTree::new();
        for a in [-1, 0, 1] {
            for b in [-1, 0, 1] {
                for c in [-1, 0, 1] {
                    assert_eq!(
                        tree.first_stage([a, b, c]),
                        a + b + c,
                        "triple ({a},{b},{c})"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "ternary value")]
    fn first_stage_rejects_out_of_alphabet() {
        SaturatedAdderTree::new().first_stage([2, 0, 0]);
    }

    #[test]
    fn small_sums_are_exact_or_close() {
        let tree = SaturatedAdderTree::new();
        // Three values: single first-stage LUT, no truncation.
        assert_eq!(tree.sum(&[1, 1, 1]), 3);
        assert_eq!(tree.sum(&[-1, -1, -1]), -3);
        assert_eq!(tree.sum(&[1, -1, 0]), 0);
    }

    #[test]
    fn truncation_preserves_sign_of_strong_sums() {
        let tree = SaturatedAdderTree::new();
        let pos = vec![1i32; 48];
        let neg = vec![-1i32; 48];
        assert!(tree.sum(&pos) > 0);
        assert!(tree.sum(&neg) < 0);
    }

    #[test]
    fn estimate_correlates_with_exact_for_shallow_trees() {
        // The 3-bit saturated datapath has output resolution 2^levels, so
        // weak (near-zero) sums collapse to 0 — which is exactly the
        // high-zero-mass behaviour ternary quantization wants — while the
        // estimate stays correlated with the exact sum. Correlation is
        // strong for shallow trees and degrades with depth.
        use rand::{Rng, SeedableRng};
        let tree = SaturatedAdderTree::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut corr_for = |n: usize| {
            let (mut xs, mut ys) = (Vec::new(), Vec::new());
            for _ in 0..1_000 {
                let v: Vec<i32> = (0..n)
                    .map(|_| {
                        let u: f64 = rng.gen();
                        if u < 0.25 {
                            -1
                        } else if u < 0.75 {
                            0
                        } else {
                            1
                        }
                    })
                    .collect();
                let (a, e) = tree.sum_with_reference(&v);
                xs.push(a as f64);
                ys.push(e as f64);
            }
            let mx = xs.iter().sum::<f64>() / xs.len() as f64;
            let my = ys.iter().sum::<f64>() / ys.len() as f64;
            let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
            let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
            let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
            cov / (vx.sqrt() * vy.sqrt())
        };
        let shallow = corr_for(48);
        let deep = corr_for(384);
        assert!(shallow > 0.55, "shallow corr = {shallow}");
        assert!(deep < shallow, "deep {deep} should trail shallow {shallow}");
        assert!(deep > 0.2, "deep corr = {deep}");
    }

    #[test]
    fn mean_relative_error_grows_with_depth() {
        // Characterizes the loss (not a fidelity claim): each extra tree
        // level truncates one more bit, so the error grows with n.
        let tree = SaturatedAdderTree::new();
        let e48 = tree.mean_relative_error(48, 500, 3);
        let e192 = tree.mean_relative_error(192, 500, 3);
        assert!(e48 < 2.5, "e48 = {e48}");
        assert!(e192 > e48, "e192 = {e192} should exceed e48 = {e48}");
    }

    #[test]
    fn zero_input_sums_to_zero() {
        let tree = SaturatedAdderTree::new();
        assert_eq!(tree.sum(&[]), 0);
        assert_eq!(tree.sum(&[0i32; 33]), 0);
    }

    #[test]
    fn saturation_bounds_the_estimate() {
        let tree = SaturatedAdderTree::new();
        // n all-ones: exact sum n, estimate ≤ SAT_MAX << levels.
        let n = 3 * 64;
        let est = tree.sum(&vec![1i32; n]);
        let levels = (n as f64 / 3.0).log2().ceil() as u32;
        assert!(est <= (SAT_MAX as i64) << levels);
        assert!(est > 0);
    }

    #[test]
    fn padding_partial_triples_is_neutral() {
        let tree = SaturatedAdderTree::new();
        // 4 values → one full triple + one padded; padding adds zeros.
        let (approx, exact) = tree.sum_with_reference(&[1, 1, 1, 1]);
        assert_eq!(exact, 4);
        assert!((approx - exact).abs() <= 2, "approx = {approx}");
    }
}
