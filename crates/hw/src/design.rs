//! Device-level FPGA design model: from LUT budget to throughput.
//!
//! [`crate::perf`] models platforms by effective op rates; this module
//! derives the FPGA's rate *structurally*: given a device LUT budget and
//! clock, the resource model (Eq. 15) determines how many dimension
//! pipelines fit, and the pipelined architecture of §III-D ("except the
//! proposed approximate adders, the rest follows \[18\]") produces one
//! batch of dimensions per cycle once the pipeline is full.
//!
//! ```text
//! parallel_dims = device_luts · utilization / luts_per_dim(d_iv, scheme)
//! cycles/input  = ceil(D_hv / parallel_dims)
//! throughput    = clock / cycles_per_input
//! ```

use serde::{Deserialize, Serialize};

use privehd_core::QuantScheme;

use crate::perf::Workload;
use crate::resources::ResourceModel;

/// A concrete FPGA device + architecture instantiation.
///
/// # Examples
///
/// ```
/// use privehd_hw::design::FpgaDesign;
/// use privehd_hw::perf::Workload;
/// use privehd_core::QuantScheme;
///
/// let kintex = FpgaDesign::kintex7_325t();
/// let isolet = Workload::new("ISOLET", 617, 10_000);
/// let exact = kintex.throughput(&isolet, QuantScheme::Bipolar, false);
/// let approx = kintex.throughput(&isolet, QuantScheme::Bipolar, true);
/// // The 70.8% LUT saving converts into proportionally more parallel
/// // dimension pipelines, hence higher throughput.
/// assert!(approx > 3.0 * exact);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FpgaDesign {
    /// Total LUT-6 on the device.
    pub device_luts: usize,
    /// Fraction of LUTs usable by the datapath (routing/control
    /// overhead excluded).
    pub utilization: f64,
    /// Datapath clock in Hz.
    pub clock_hz: f64,
    /// Device power in watts (for energy-per-input).
    pub power_w: f64,
}

impl FpgaDesign {
    /// The paper's device: Xilinx Kintex-7 XC7K325T (KC705 kit) —
    /// 203,800 LUT-6, 200 MHz datapath clock, ~7 W (XPE estimate).
    pub fn kintex7_325t() -> Self {
        Self {
            device_luts: 203_800,
            utilization: 0.75,
            clock_hz: 200e6,
            power_w: 7.0,
        }
    }

    /// LUT-6 consumed by one output-dimension pipeline for the given
    /// feature count and quantization scheme.
    pub fn luts_per_dim(&self, d_iv: usize, scheme: QuantScheme, approximate: bool) -> f64 {
        let m = ResourceModel::new(d_iv);
        match scheme {
            QuantScheme::Ternary | QuantScheme::TernaryBiased | QuantScheme::TwoBit => {
                if approximate {
                    m.ternary_saturated()
                } else {
                    m.ternary_exact()
                }
            }
            // Bipolar (and the full-precision reference, which the FPGA
            // would not implement — treat as exact bipolar datapath).
            _ => {
                if approximate {
                    m.bipolar_approx()
                } else {
                    m.bipolar_exact()
                }
            }
        }
    }

    /// How many dimension pipelines fit the device.
    pub fn parallel_dims(&self, d_iv: usize, scheme: QuantScheme, approximate: bool) -> usize {
        let per_dim = self.luts_per_dim(d_iv, scheme, approximate);
        ((self.device_luts as f64 * self.utilization) / per_dim).floor() as usize
    }

    /// Pipeline cycles per input: `ceil(D_hv / parallel_dims)`, at least
    /// one.
    pub fn cycles_per_input(
        &self,
        workload: &Workload,
        scheme: QuantScheme,
        approximate: bool,
    ) -> usize {
        let p = self
            .parallel_dims(workload.features, scheme, approximate)
            .max(1);
        workload.dim.div_ceil(p).max(1)
    }

    /// Inference throughput (inputs/s) of the pipelined design.
    pub fn throughput(&self, workload: &Workload, scheme: QuantScheme, approximate: bool) -> f64 {
        self.clock_hz / self.cycles_per_input(workload, scheme, approximate) as f64
    }

    /// Energy per input in Joules.
    pub fn energy_per_input(
        &self,
        workload: &Workload,
        scheme: QuantScheme,
        approximate: bool,
    ) -> f64 {
        self.power_w / self.throughput(workload, scheme, approximate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn isolet() -> Workload {
        Workload::new("ISOLET", 617, 10_000)
    }

    #[test]
    fn approximation_multiplies_parallelism_by_the_saving() {
        let d = FpgaDesign::kintex7_325t();
        let exact = d.parallel_dims(617, QuantScheme::Bipolar, false);
        let approx = d.parallel_dims(617, QuantScheme::Bipolar, true);
        // 4/3 / (7/18) = 24/7 ≈ 3.43x more pipelines.
        let ratio = approx as f64 / exact as f64;
        assert!((ratio - 24.0 / 7.0).abs() < 0.05, "ratio = {ratio}");
    }

    #[test]
    fn throughput_lands_in_the_papers_magnitude() {
        // Paper Table I: 2.5M inputs/s on ISOLET.
        let d = FpgaDesign::kintex7_325t();
        let tput = d.throughput(&isolet(), QuantScheme::Bipolar, true);
        assert!(
            (1e6..2e8).contains(&tput),
            "structural throughput {tput} inputs/s"
        );
    }

    #[test]
    fn ternary_costs_more_than_bipolar() {
        let d = FpgaDesign::kintex7_325t();
        let w = isolet();
        assert!(
            d.throughput(&w, QuantScheme::Ternary, true)
                < d.throughput(&w, QuantScheme::Bipolar, true)
        );
    }

    #[test]
    fn energy_is_power_over_throughput() {
        let d = FpgaDesign::kintex7_325t();
        let w = isolet();
        let e = d.energy_per_input(&w, QuantScheme::Bipolar, true);
        assert!((e - d.power_w / d.throughput(&w, QuantScheme::Bipolar, true)).abs() < 1e-15);
    }

    #[test]
    fn more_features_means_fewer_pipelines() {
        let d = FpgaDesign::kintex7_325t();
        assert!(
            d.parallel_dims(784, QuantScheme::Bipolar, true)
                < d.parallel_dims(128, QuantScheme::Bipolar, true)
        );
    }

    #[test]
    fn cycles_per_input_is_at_least_one() {
        let d = FpgaDesign::kintex7_325t();
        let tiny = Workload::new("tiny", 6, 8);
        assert_eq!(d.cycles_per_input(&tiny, QuantScheme::Bipolar, true), 1);
    }
}
