//! Platform throughput/energy models for Table I.
//!
//! The paper measures inference throughput (inputs/second) and energy per
//! input (Joule) on three platforms: a Raspberry Pi 3 (3 W, scalar
//! software), an NVIDIA GTX 1080 Ti (120 W, CUDA), and the Prive-HD
//! pipeline on a Kintex-7 FPGA (≈7 W, bit-level parallel). With no
//! hardware attached, this module provides an *analytic* model:
//!
//! ```text
//! work(input)  = d_iv · D_hv        elementary ops (encode dominates)
//! throughput   = effective_ops_per_second / work
//! energy/input = power / throughput
//! ```
//!
//! where `effective_ops_per_second` reflects each platform's arithmetic
//! at the relevant precision: ~10⁸ scalar f32 MACs for the Pi, ~10¹²
//! for the GPU, and ~1.5·10¹³ *single-bit* operations for the FPGA's
//! LUT fabric (the quantized pipeline of §III-D works on bits, which is
//! exactly why the FPGA wins by orders of magnitude). The constants are
//! documented estimates, not fits to Table I; the reproduced quantity is
//! the *shape* — who wins and by roughly what factor.

use serde::{Deserialize, Serialize};

/// The platforms Table I compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformKind {
    /// Raspberry Pi 3 embedded processor (software, f32).
    RaspberryPi,
    /// NVIDIA GTX 1080 Ti GPU (software, f32, batched).
    Gpu,
    /// Prive-HD on a Kintex-7 FPGA (bit-serial quantized pipeline).
    PriveHdFpga,
}

impl PlatformKind {
    /// Table row label.
    pub fn label(&self) -> &'static str {
        match self {
            PlatformKind::RaspberryPi => "Raspberry Pi",
            PlatformKind::Gpu => "GPU",
            PlatformKind::PriveHdFpga => "Prive-HD (FPGA)",
        }
    }

    /// All platforms, in Table I column order.
    pub const ALL: [PlatformKind; 3] = [
        PlatformKind::RaspberryPi,
        PlatformKind::Gpu,
        PlatformKind::PriveHdFpga,
    ];
}

/// An inference workload: one dataset's encoding shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Dataset name (table row).
    pub name: String,
    /// Input feature count `d_iv`.
    pub features: usize,
    /// Hypervector dimensionality `D_hv`.
    pub dim: usize,
}

impl Workload {
    /// Creates a workload description.
    pub fn new(name: impl Into<String>, features: usize, dim: usize) -> Self {
        Self {
            name: name.into(),
            features,
            dim,
        }
    }

    /// The paper's three benchmark workloads at `D_hv = 10,000`.
    pub fn paper_benchmarks() -> Vec<Workload> {
        vec![
            Workload::new("ISOLET", 617, 10_000),
            Workload::new("FACE", 608, 10_000),
            Workload::new("MNIST", 784, 10_000),
        ]
    }

    /// Elementary operations per input: `d_iv · D_hv` (encoding
    /// dominates; the similarity step adds `|C|·D_hv ≪ d_iv·D_hv`).
    pub fn ops_per_input(&self) -> f64 {
        (self.features * self.dim) as f64
    }
}

/// A platform performance model.
///
/// # Examples
///
/// ```
/// use privehd_hw::{Platform, PlatformKind, Workload};
///
/// let fpga = Platform::paper(PlatformKind::PriveHdFpga);
/// let pi = Platform::paper(PlatformKind::RaspberryPi);
/// let w = Workload::new("ISOLET", 617, 10_000);
/// assert!(fpga.throughput(&w) > 10_000.0 * pi.throughput(&w));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Which platform this models.
    pub kind: PlatformKind,
    /// Effective elementary operations per second at the precision the
    /// platform runs the pipeline in.
    pub effective_ops_per_sec: f64,
    /// Board/device power in watts.
    pub power_w: f64,
    /// Fixed per-input overhead in seconds (kernel launch, I/O); zero for
    /// the fully pipelined FPGA.
    pub overhead_s: f64,
}

impl Platform {
    /// The paper-documented constants for each platform:
    ///
    /// * Pi 3: ~1.2 GHz quad A53, effective ~1.2·10⁸ scalar MAC/s for
    ///   this access pattern, 3 W (Hioki meter).
    /// * GTX 1080 Ti: ~10.6 TFLOPS peak, ~8.5·10¹¹ effective for
    ///   short-vector inference, 120 W (nvidia-smi), 2 µs launch overhead.
    /// * Kintex-7: 200 MHz × ~78,000 bit-ops/cycle ≈ 1.56·10¹³ bit-ops/s
    ///   on the quantized pipeline, ~7 W (XPE).
    pub fn paper(kind: PlatformKind) -> Self {
        match kind {
            PlatformKind::RaspberryPi => Self {
                kind,
                effective_ops_per_sec: 1.2e8,
                power_w: 3.0,
                overhead_s: 0.0,
            },
            PlatformKind::Gpu => Self {
                kind,
                effective_ops_per_sec: 8.5e11,
                power_w: 120.0,
                overhead_s: 2e-6,
            },
            PlatformKind::PriveHdFpga => Self {
                kind,
                effective_ops_per_sec: 1.56e13,
                power_w: 7.0,
                overhead_s: 0.0,
            },
        }
    }

    /// Inference throughput (inputs per second) on a workload.
    pub fn throughput(&self, workload: &Workload) -> f64 {
        let compute_s = workload.ops_per_input() / self.effective_ops_per_sec;
        1.0 / (compute_s + self.overhead_s)
    }

    /// Energy per input in Joules: `power / throughput`.
    pub fn energy_per_input(&self, workload: &Workload) -> f64 {
        self.power_w / self.throughput(workload)
    }
}

/// One row of the regenerated Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableRow {
    /// Workload name.
    pub workload: String,
    /// `(platform label, throughput inputs/s, energy J/input)` triples in
    /// [`PlatformKind::ALL`] order.
    pub cells: Vec<(String, f64, f64)>,
}

/// Regenerates Table I for the given workloads with the paper platform
/// constants.
pub fn table1(workloads: &[Workload]) -> Vec<TableRow> {
    workloads
        .iter()
        .map(|w| TableRow {
            workload: w.name.clone(),
            cells: PlatformKind::ALL
                .iter()
                .map(|&k| {
                    let p = Platform::paper(k);
                    (k.label().to_owned(), p.throughput(w), p.energy_per_input(w))
                })
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn isolet() -> Workload {
        Workload::new("ISOLET", 617, 10_000)
    }

    #[test]
    fn ordering_matches_table1() {
        let w = isolet();
        let pi = Platform::paper(PlatformKind::RaspberryPi);
        let gpu = Platform::paper(PlatformKind::Gpu);
        let fpga = Platform::paper(PlatformKind::PriveHdFpga);
        assert!(fpga.throughput(&w) > gpu.throughput(&w));
        assert!(gpu.throughput(&w) > pi.throughput(&w));
        assert!(fpga.energy_per_input(&w) < gpu.energy_per_input(&w));
        assert!(gpu.energy_per_input(&w) < pi.energy_per_input(&w));
    }

    #[test]
    fn factors_are_in_the_paper_ballpark() {
        // Paper averages: FPGA/GPU throughput ≈ 15.8×, FPGA/Pi ≈ 10⁵×,
        // energy 288× and ~5×10⁴×. Require the right order of magnitude.
        let w = isolet();
        let pi = Platform::paper(PlatformKind::RaspberryPi);
        let gpu = Platform::paper(PlatformKind::Gpu);
        let fpga = Platform::paper(PlatformKind::PriveHdFpga);
        let tp_vs_gpu = fpga.throughput(&w) / gpu.throughput(&w);
        let tp_vs_pi = fpga.throughput(&w) / pi.throughput(&w);
        assert!((5.0..60.0).contains(&tp_vs_gpu), "vs GPU: {tp_vs_gpu}");
        assert!((3e4..5e5).contains(&tp_vs_pi), "vs Pi: {tp_vs_pi}");
        let e_vs_gpu = gpu.energy_per_input(&w) / fpga.energy_per_input(&w);
        assert!(
            (50.0..2_000.0).contains(&e_vs_gpu),
            "energy vs GPU: {e_vs_gpu}"
        );
    }

    #[test]
    fn pi_throughput_is_tens_per_second() {
        // Paper: 19.8 inputs/s on ISOLET.
        let tp = Platform::paper(PlatformKind::RaspberryPi).throughput(&isolet());
        assert!((5.0..100.0).contains(&tp), "tp = {tp}");
    }

    #[test]
    fn energy_is_power_over_throughput() {
        let w = isolet();
        for k in PlatformKind::ALL {
            let p = Platform::paper(k);
            let expected = p.power_w / p.throughput(&w);
            assert!((p.energy_per_input(&w) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn bigger_inputs_are_slower() {
        let p = Platform::paper(PlatformKind::Gpu);
        let small = Workload::new("s", 100, 10_000);
        let big = Workload::new("b", 1_000, 10_000);
        assert!(p.throughput(&small) > p.throughput(&big));
    }

    #[test]
    fn table1_has_three_rows_and_nine_cells() {
        let rows = table1(&Workload::paper_benchmarks());
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert_eq!(r.cells.len(), 3);
        }
        assert_eq!(rows[0].workload, "ISOLET");
    }

    #[test]
    fn gpu_overhead_caps_small_workload_throughput() {
        let p = Platform::paper(PlatformKind::Gpu);
        let tiny = Workload::new("tiny", 1, 10);
        assert!(p.throughput(&tiny) <= 1.0 / p.overhead_s);
    }
}
