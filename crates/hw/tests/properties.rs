//! Property-based tests for the hardware functional models.

use proptest::prelude::*;

use privehd_hw::{exact_sign, Lut6, MajorityCircuit, ResourceModel, SaturatedAdderTree};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lut_from_fn_matches_function(table in any::<u64>()) {
        let lut = Lut6::from_table(table);
        let rebuilt = Lut6::from_fn(|bits| lut.eval(bits));
        prop_assert_eq!(lut, rebuilt);
    }

    #[test]
    fn majority_lut_matches_popcount(bits in prop::collection::vec(any::<bool>(), 6)) {
        let mut arr = [false; 6];
        arr.copy_from_slice(&bits);
        let ones = bits.iter().filter(|&&b| b).count();
        for tie in [false, true] {
            let expected = match ones.cmp(&3) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Less => false,
                std::cmp::Ordering::Equal => tie,
            };
            prop_assert_eq!(Lut6::majority(tie).eval(arr), expected);
        }
    }

    #[test]
    fn exact_circuit_always_matches_exact_sign(bits in prop::collection::vec(any::<bool>(), 1..500)) {
        prop_assert_eq!(MajorityCircuit::exact().sign(&bits), exact_sign(&bits));
    }

    #[test]
    fn approx_circuit_is_exact_on_unanimous_inputs(n in 1usize..500, value in any::<bool>()) {
        for stages in 0..3 {
            let c = MajorityCircuit::with_stages(stages);
            prop_assert_eq!(c.sign(&vec![value; n]), value);
        }
    }

    #[test]
    fn negating_input_negates_approx_sign_off_ties(bits in prop::collection::vec(any::<bool>(), 12..400)) {
        // When neither polarity hits a tie anywhere, the circuit is
        // antisymmetric: flipping every bit flips the output.
        let ones = bits.iter().filter(|&&b| b).count();
        prop_assume!(2 * ones != bits.len());
        let inverted: Vec<bool> = bits.iter().map(|b| !b).collect();
        let c = MajorityCircuit::exact();
        prop_assert_eq!(c.sign(&bits), !c.sign(&inverted));
    }

    #[test]
    fn first_stage_sums_exactly(a in -1i32..=1, b in -1i32..=1, c in -1i32..=1) {
        let tree = SaturatedAdderTree::new();
        prop_assert_eq!(tree.first_stage([a, b, c]), a + b + c);
    }

    #[test]
    fn saturated_sum_is_bounded(values in prop::collection::vec(-1i32..=1, 0..300)) {
        let tree = SaturatedAdderTree::new();
        let estimate = tree.sum(&values);
        let n = values.len() as i64;
        // |estimate| can never exceed the saturation envelope.
        prop_assert!(estimate.abs() <= (n.max(3) + 3) * 4);
    }

    #[test]
    fn saturated_sum_of_zeros_is_zero(n in 0usize..300) {
        let tree = SaturatedAdderTree::new();
        prop_assert_eq!(tree.sum(&vec![0i32; n]), 0);
    }

    #[test]
    fn resource_savings_hold_for_all_d(d in 1usize..100_000) {
        let m = ResourceModel::new(d);
        prop_assert!(m.bipolar_approx() < m.bipolar_exact());
        prop_assert!(m.ternary_saturated() < m.ternary_exact());
        prop_assert!((m.bipolar_saving() - 0.7083).abs() < 1e-3);
        prop_assert!((m.ternary_saving() - 1.0 / 3.0).abs() < 1e-9);
    }
}
