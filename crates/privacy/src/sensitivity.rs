//! Sensitivity of the HD training mechanism (Eq. 7, 11, 12, 14).
//!
//! Two adjacent datasets differ in one input, so their trained models
//! differ by exactly one encoded hypervector `H` (Eq. 3 is a plain sum).
//! The sensitivity is therefore a norm of `H`:
//!
//! * **Full precision, ℓ1** (Eq. 11) — each component of `H` is a sum of
//!   `D_iv` i.i.d. `±1` terms, so `H_j ~ N(0, D_iv)` by the CLT and the
//!   folded-normal mean gives `‖H‖₁ = √(2·D_iv/π) · D_hv`.
//! * **Full precision, ℓ2** (Eq. 12) — `H_j²` is `D_iv`·χ²₁, so
//!   `‖H‖₂ = √(D_hv · D_iv)`.
//! * **Quantized, ℓ2** (Eq. 14) — with alphabet probabilities `p_k`,
//!   `‖H‖₂ = (Σ_k p_k · D_hv · k²)^{1/2}`, independent of `D_iv`.
//!
//! [`Sensitivity`] evaluates all three plus empirical (measured-on-data)
//! variants.

use serde::{Deserialize, Serialize};

use privehd_core::{Encoder, HdError, Hypervector, PruneMask, QuantScheme, ValueHistogram};

/// Analytic and empirical sensitivity calculations for the HD encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sensitivity {
    /// Input feature count `D_iv`.
    pub features: usize,
    /// Hypervector dimensionality `D_hv` (after pruning, the *kept*
    /// dimension count).
    pub dim: usize,
}

impl Sensitivity {
    /// Creates a sensitivity context for `features`-dimensional inputs
    /// encoded into `dim`-dimensional hypervectors.
    pub fn new(features: usize, dim: usize) -> Self {
        Self { features, dim }
    }

    /// ℓ1 sensitivity of the full-precision encoding (Eq. 11):
    /// `√(2·D_iv/π) · D_hv`.
    pub fn l1_full(&self) -> f64 {
        (2.0 * self.features as f64 / std::f64::consts::PI).sqrt() * self.dim as f64
    }

    /// ℓ2 sensitivity of the full-precision encoding (Eq. 12):
    /// `√(D_hv · D_iv)`.
    pub fn l2_full(&self) -> f64 {
        ((self.dim * self.features) as f64).sqrt()
    }

    /// ℓ2 sensitivity of a quantized encoding (Eq. 14) with the scheme's
    /// theoretical occupation probabilities:
    /// `(Σ_k p_k · D_hv · k²)^{1/2}`.
    ///
    /// For [`QuantScheme::Full`] this falls back to [`Sensitivity::l2_full`]
    /// (the alphabet is unbounded).
    pub fn l2_quantized(&self, scheme: QuantScheme) -> f64 {
        if matches!(scheme, QuantScheme::Full) {
            return self.l2_full();
        }
        let d = self.dim as f64;
        scheme
            .alphabet()
            .iter()
            .zip(scheme.theoretical_probabilities())
            .map(|(&k, &p)| p * d * k * k)
            .sum::<f64>()
            .sqrt()
    }

    /// *Per-dimension* sensitivity: the largest change one record can
    /// make to a *single* class-hypervector dimension, i.e. `max_k |k|`
    /// of the quantization alphabet (1 for bipolar/ternary, 2 for 2-bit).
    ///
    /// This is **not** the ℓ2 sensitivity the Gaussian mechanism of
    /// Eq. (8) formally requires (that is Eq. 14 / [`Sensitivity::l2_quantized`]);
    /// it corresponds to calibrating the noise per dimension as if each
    /// dimension were an independent scalar query. The paper's reported
    /// accuracies (Fig. 8) are achievable under this reading but not
    /// under the vector-ℓ2 one — see EXPERIMENTS.md — so both are
    /// provided.
    ///
    /// For [`QuantScheme::Full`] the per-record change of one dimension is
    /// unbounded in principle; a 3σ bound of the CLT component
    /// distribution (`3·√D_iv`) is returned as a pragmatic clip.
    pub fn per_dimension(&self, scheme: QuantScheme) -> f64 {
        match scheme {
            QuantScheme::Full => 3.0 * (self.features as f64).sqrt(),
            _ => scheme.alphabet().iter().fold(0.0f64, |m, k| m.max(k.abs())),
        }
    }

    /// ℓ2 sensitivity from a *measured* value histogram (Eq. 14 with
    /// empirical `p_k`), e.g. the histogram of an actual quantized
    /// encoding.
    pub fn l2_from_histogram(hist: &ValueHistogram) -> f64 {
        hist.l2_norm()
    }

    /// Empirical sensitivity: the maximum ℓ2 norm over the encodings of a
    /// probe set (optionally quantized and pruned exactly as training
    /// does). This is the worst-case `‖f(D₁)−f(D₂)‖₂` over the observed
    /// data distribution and is what the pipeline reports next to the
    /// analytic value.
    ///
    /// # Errors
    ///
    /// Propagates encoding errors; returns [`HdError::EmptyInput`] for an
    /// empty probe set.
    pub fn l2_empirical<E: Encoder>(
        encoder: &E,
        probes: &[Vec<f64>],
        scheme: QuantScheme,
        mask: Option<&PruneMask>,
    ) -> Result<f64, HdError> {
        if probes.is_empty() {
            return Err(HdError::EmptyInput("sensitivity probe set"));
        }
        let sigma_hint = (encoder.features() as f64).sqrt();
        let mut worst = 0.0f64;
        for x in probes {
            let mut h: Hypervector = encoder.encode(x)?;
            if !matches!(scheme, QuantScheme::Full) {
                h = scheme.quantize(&h, sigma_hint);
            }
            if let Some(m) = mask {
                m.apply(&mut h)?;
            }
            worst = worst.max(h.l2_norm());
        }
        Ok(worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privehd_core::{EncoderConfig, LevelEncoder};

    #[test]
    fn paper_example_l2_full() {
        // §III-B2: ISOLET, 617 features, 10k dims → Δf = √(10⁴·617) ≈ 2484.
        let s = Sensitivity::new(617, 10_000);
        assert!((s.l2_full() - 2484.0).abs() < 1.0, "{}", s.l2_full());
    }

    #[test]
    fn paper_example_l2_200_features() {
        // §III-B: "for a modest 200-features input the ℓ2 sensitivity is
        // 10³·√2" at D_hv = 10⁴.
        let s = Sensitivity::new(200, 10_000);
        assert!(
            (s.l2_full() - 1_000.0 * 2.0f64.sqrt()).abs() < 1.0,
            "{}",
            s.l2_full()
        );
    }

    #[test]
    fn l1_exceeds_l2() {
        let s = Sensitivity::new(617, 10_000);
        assert!(s.l1_full() > s.l2_full());
    }

    #[test]
    fn quantized_sensitivity_is_independent_of_features() {
        let a = Sensitivity::new(100, 10_000);
        let b = Sensitivity::new(5_000, 10_000);
        for scheme in [
            QuantScheme::Bipolar,
            QuantScheme::Ternary,
            QuantScheme::TwoBit,
        ] {
            assert_eq!(a.l2_quantized(scheme), b.l2_quantized(scheme));
        }
    }

    #[test]
    fn bipolar_sensitivity_is_sqrt_dim() {
        let s = Sensitivity::new(617, 10_000);
        assert!((s.l2_quantized(QuantScheme::Bipolar) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn biased_ternary_is_0_87_of_uniform() {
        let s = Sensitivity::new(617, 9_000);
        let ratio =
            s.l2_quantized(QuantScheme::TernaryBiased) / s.l2_quantized(QuantScheme::Ternary);
        // √( (1/4+1/4) / (1/3+1/3) ) = √3/2 ≈ 0.866 — the paper's 0.87×.
        assert!((ratio - 0.866).abs() < 0.001, "ratio = {ratio}");
    }

    #[test]
    fn quantization_plus_pruning_shrinks_sensitivity_to_paper_range() {
        // §III-B2: quantization + pruning shrank Δf to 22.3 from 2484
        // (full precision at 10k dims vs ternary at ~1k kept dims).
        let pruned = Sensitivity::new(617, 1_000);
        let d = pruned.l2_quantized(QuantScheme::Ternary);
        assert!((20.0..30.0).contains(&d), "Δf = {d}");
        let full = Sensitivity::new(617, 10_000).l2_full();
        assert!(full / d > 90.0, "reduction {}x should be ~100x", full / d);
    }

    #[test]
    fn sensitivity_ordering_matches_fig5b() {
        // Fig. 5(b): 2-bit > bipolar > ternary > ternary(biased).
        let s = Sensitivity::new(617, 10_000);
        let two_bit = s.l2_quantized(QuantScheme::TwoBit);
        let bipolar = s.l2_quantized(QuantScheme::Bipolar);
        let ternary = s.l2_quantized(QuantScheme::Ternary);
        let biased = s.l2_quantized(QuantScheme::TernaryBiased);
        assert!(two_bit > bipolar && bipolar > ternary && ternary > biased);
    }

    #[test]
    fn per_dimension_sensitivity_is_alphabet_max() {
        let s = Sensitivity::new(617, 10_000);
        assert_eq!(s.per_dimension(QuantScheme::Bipolar), 1.0);
        assert_eq!(s.per_dimension(QuantScheme::Ternary), 1.0);
        assert_eq!(s.per_dimension(QuantScheme::TernaryBiased), 1.0);
        assert_eq!(s.per_dimension(QuantScheme::TwoBit), 2.0);
        // Full precision: 3σ clip of the CLT component distribution.
        assert!((s.per_dimension(QuantScheme::Full) - 3.0 * 617f64.sqrt()).abs() < 1e-9);
        // Orders of magnitude below the vector ℓ2 sensitivity.
        assert!(
            s.per_dimension(QuantScheme::Ternary) < s.l2_quantized(QuantScheme::Ternary) / 10.0
        );
    }

    #[test]
    fn empirical_matches_analytic_for_bipolar() {
        let enc =
            LevelEncoder::new(EncoderConfig::new(64, 4_096).with_levels(16).with_seed(2)).unwrap();
        let probes: Vec<Vec<f64>> = (0..10)
            .map(|i| (0..64).map(|k| ((i + k) % 16) as f64 / 15.0).collect())
            .collect();
        let emp = Sensitivity::l2_empirical(&enc, &probes, QuantScheme::Bipolar, None).unwrap();
        let analytic = Sensitivity::new(64, 4_096).l2_quantized(QuantScheme::Bipolar);
        // Bipolar has *exactly* √D norm regardless of data.
        assert!((emp - analytic).abs() < 1e-9, "emp {emp} vs {analytic}");
    }

    #[test]
    fn empirical_full_precision_tracks_clt_prediction() {
        let enc =
            LevelEncoder::new(EncoderConfig::new(200, 8_192).with_levels(20).with_seed(3)).unwrap();
        let probes: Vec<Vec<f64>> = (0..5)
            .map(|i| (0..200).map(|k| ((i * 7 + k) % 20) as f64 / 19.0).collect())
            .collect();
        let emp = Sensitivity::l2_empirical(&enc, &probes, QuantScheme::Full, None).unwrap();
        let analytic = Sensitivity::new(200, 8_192).l2_full();
        assert!(
            (emp / analytic - 1.0).abs() < 0.15,
            "emp {emp} vs analytic {analytic}"
        );
    }

    #[test]
    fn masking_reduces_empirical_sensitivity() {
        let enc =
            LevelEncoder::new(EncoderConfig::new(32, 1_024).with_levels(8).with_seed(4)).unwrap();
        let probes: Vec<Vec<f64>> = (0..4)
            .map(|i| (0..32).map(|k| ((i + k) % 8) as f64 / 7.0).collect())
            .collect();
        let mask = PruneMask::from_pruned_indices(1_024, &(0..512).collect::<Vec<_>>()).unwrap();
        let full = Sensitivity::l2_empirical(&enc, &probes, QuantScheme::Bipolar, None).unwrap();
        let masked =
            Sensitivity::l2_empirical(&enc, &probes, QuantScheme::Bipolar, Some(&mask)).unwrap();
        assert!((masked / full - (0.5f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn empty_probe_set_errors() {
        let enc = LevelEncoder::new(EncoderConfig::new(4, 64).with_levels(4)).unwrap();
        assert!(Sensitivity::l2_empirical(&enc, &[], QuantScheme::Full, None).is_err());
    }
}
