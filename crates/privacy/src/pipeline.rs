//! The Prive-HD private training pipeline (§III-B) and the
//! model-subtraction membership attack it defends against (§III-A).
//!
//! Pipeline stages, in paper order:
//!
//! 1. **Encode** the training set with the scalar encoding of Eq. (2a)
//!    and **quantize** each encoded hypervector (Eq. 13) — classes will be
//!    sums of quantized encodings and stay full precision.
//! 2. **Train** by bundling (Eq. 3).
//! 3. **Prune** the close-to-zero class dimensions and **retrain** 1–2
//!    epochs with masked queries so the pruned dimensions stay
//!    perpetually zero (§III-B1, Fig. 4).
//! 4. **Compute the sensitivity** `Δf` of the (quantized, pruned)
//!    encoding via Eq. (14).
//! 5. **Add Gaussian noise** `G(0, (Δf·σ)²)` per class dimension with σ
//!    calibrated from the (ε, δ) budget (Eq. 8). The noisy model is
//!    *not* retrained — that would violate differential privacy (§IV-A).

use serde::{Deserialize, Serialize};

use privehd_core::prelude::*;
use privehd_core::{HdError, Hypervector};
use privehd_data::Dataset;

use crate::budget::PrivacyBudget;
use crate::mechanism::{GaussianMechanism, Mechanism};
use crate::sensitivity::Sensitivity;

/// How the sensitivity fed to the Gaussian mechanism is computed.
///
/// [`SensitivityMode::VectorL2`] is the formally correct calibration for
/// the vector-valued Gaussian mechanism of Eq. (8) (Δf = Eq. 14).
/// [`SensitivityMode::PerDimension`] treats every class dimension as an
/// independent scalar query with sensitivity `max|k|`; the paper's
/// reported Fig. 8 accuracies are only achievable under this reading —
/// see EXPERIMENTS.md for the analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SensitivityMode {
    /// Δf = ‖H‖₂ per Eq. (14) — the formally correct vector calibration.
    VectorL2,
    /// Δf = max|k| per dimension — the paper-consistent calibration.
    PerDimension,
}

/// Configuration of the private training pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrivateTrainingConfig {
    /// Hypervector dimensionality before pruning.
    pub dim: usize,
    /// Dimensions *kept* after pruning (`None` disables pruning).
    pub keep_dims: Option<usize>,
    /// Encoding quantization scheme (the paper's best DP results use
    /// ternary).
    pub scheme: QuantScheme,
    /// The (ε, δ) privacy budget.
    pub budget: PrivacyBudget,
    /// Feature quantization levels `ℓ_iv` of the encoder.
    pub levels: usize,
    /// Retraining epochs after pruning (Fig. 4: 1–2 suffice).
    pub retrain_epochs: usize,
    /// Sensitivity calibration mode (see [`SensitivityMode`]).
    pub sensitivity_mode: SensitivityMode,
    /// Master seed (encoder basis, pruning ties, noise).
    pub seed: u64,
}

impl PrivateTrainingConfig {
    /// A paper-typical configuration: 10k dims pruned to `keep_dims`,
    /// ternary quantization, 2 retraining epochs.
    pub fn new(budget: PrivacyBudget) -> Self {
        Self {
            dim: 10_000,
            keep_dims: None,
            scheme: QuantScheme::Ternary,
            budget,
            levels: 100,
            retrain_epochs: 2,
            sensitivity_mode: SensitivityMode::VectorL2,
            seed: 0,
        }
    }

    /// Sets the pre-pruning dimensionality.
    #[must_use]
    pub fn with_dim(mut self, dim: usize) -> Self {
        self.dim = dim;
        self
    }

    /// Enables pruning down to `keep_dims` kept dimensions.
    #[must_use]
    pub fn with_keep_dims(mut self, keep_dims: usize) -> Self {
        self.keep_dims = Some(keep_dims);
        self
    }

    /// Sets the quantization scheme.
    #[must_use]
    pub fn with_scheme(mut self, scheme: QuantScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Sets the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the retraining epoch budget.
    #[must_use]
    pub fn with_retrain_epochs(mut self, epochs: usize) -> Self {
        self.retrain_epochs = epochs;
        self
    }

    /// Sets the sensitivity calibration mode.
    #[must_use]
    pub fn with_sensitivity_mode(mut self, mode: SensitivityMode) -> Self {
        self.sensitivity_mode = mode;
        self
    }

    /// The number of dimensions that survive pruning.
    pub fn effective_dims(&self) -> usize {
        self.keep_dims.map_or(self.dim, |k| k.min(self.dim))
    }
}

/// Metrics recorded while running the pipeline — everything needed to
/// reproduce a Fig. 8 point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrivateTrainingReport {
    /// Test accuracy of the non-noisy (but quantized/pruned) model.
    pub clean_accuracy: f64,
    /// Test accuracy after noise injection — the private model.
    pub private_accuracy: f64,
    /// Analytic ℓ2 sensitivity (Eq. 14 over kept dimensions).
    pub delta_f_analytic: f64,
    /// Empirical ℓ2 sensitivity (max encoding norm over the train set).
    pub delta_f_empirical: f64,
    /// The calibrated Gaussian multiplier σ.
    pub sigma: f64,
    /// Per-dimension noise standard deviation actually injected
    /// (`Δf·σ`).
    pub noise_std: f64,
    /// Retraining epochs executed.
    pub retrain_epochs_run: usize,
    /// Dimensions kept after pruning.
    pub kept_dims: usize,
}

/// The pipeline runner.
///
/// # Examples
///
/// ```no_run
/// use privehd_privacy::{PrivacyBudget, PrivateTrainer, PrivateTrainingConfig};
/// use privehd_data::surrogates;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let budget = PrivacyBudget::with_paper_delta(1.0)?;
/// let config = PrivateTrainingConfig::new(budget)
///     .with_dim(4_000)
///     .with_keep_dims(2_000);
/// let dataset = surrogates::face(60, 20, 0);
/// let (model, report) = PrivateTrainer::new(config).run(&dataset)?;
/// println!("private accuracy: {:.1}%", report.private_accuracy * 100.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PrivateTrainer {
    config: PrivateTrainingConfig,
}

/// A differentially private HD model plus everything needed to use it for
/// inference (encoder configuration, prune mask, quantization scheme).
#[derive(Debug, Clone)]
pub struct PrivateModel {
    model: HdModel,
    encoder: ScalarEncoder,
    mask: Option<PruneMask>,
    scheme: QuantScheme,
}

impl PrivateModel {
    /// The noisy class hypervectors.
    pub fn model(&self) -> &HdModel {
        &self.model
    }

    /// The encoder (public basis) used for queries.
    pub fn encoder(&self) -> &ScalarEncoder {
        &self.encoder
    }

    /// The prune mask, when pruning was enabled.
    pub fn mask(&self) -> Option<&PruneMask> {
        self.mask.as_ref()
    }

    /// The query quantization scheme in force.
    pub fn scheme(&self) -> QuantScheme {
        self.scheme
    }

    /// Encodes a raw feature vector the way this model expects:
    /// encode → quantize → mask.
    ///
    /// # Errors
    ///
    /// Propagates encoding and masking errors.
    pub fn encode_query(&self, features: &[f64]) -> Result<Hypervector, HdError> {
        let h = self.encoder.encode(features)?;
        let mut q = quantize_adaptive(&h, self.scheme);
        if let Some(mask) = &self.mask {
            mask.apply(&mut q)?;
        }
        Ok(q)
    }

    /// Classifies a raw feature vector.
    ///
    /// # Errors
    ///
    /// Propagates encoding and prediction errors.
    pub fn predict(&self, features: &[f64]) -> Result<Prediction, HdError> {
        self.model.predict(&self.encode_query(features)?)
    }

    /// Accuracy over raw `(features, label)` pairs.
    ///
    /// # Errors
    ///
    /// Propagates encoding and prediction errors; errors on an empty set.
    pub fn accuracy<'a, I>(&self, pairs: I) -> Result<f64, HdError>
    where
        I: IntoIterator<Item = (&'a [f64], usize)>,
    {
        let mut total = 0usize;
        let mut correct = 0usize;
        for (x, y) in pairs {
            total += 1;
            if self.predict(x)?.class == y {
                correct += 1;
            }
        }
        if total == 0 {
            return Err(HdError::EmptyInput("evaluation pairs"));
        }
        Ok(correct as f64 / total as f64)
    }
}

/// Quantizes with a per-vector empirical threshold; see
/// [`QuantScheme::quantize_adaptive`].
pub(crate) fn quantize_adaptive(h: &Hypervector, scheme: QuantScheme) -> Hypervector {
    scheme.quantize_adaptive(h)
}

impl PrivateTrainer {
    /// Creates a trainer for the given configuration.
    pub fn new(config: PrivateTrainingConfig) -> Self {
        Self { config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &PrivateTrainingConfig {
        &self.config
    }

    /// Runs the full pipeline on a dataset.
    ///
    /// # Errors
    ///
    /// Propagates encoding, training and masking errors; an empty dataset
    /// yields [`HdError::EmptyInput`].
    pub fn run(&self, dataset: &Dataset) -> Result<(PrivateModel, PrivateTrainingReport), HdError> {
        let cfg = &self.config;
        let encoder = ScalarEncoder::new(
            EncoderConfig::new(dataset.features(), cfg.dim)
                .with_levels(cfg.levels)
                .with_seed(cfg.seed),
        )?;

        // Stage 1+2: encode, quantize, bundle.
        let inputs: Vec<Vec<f64>> = dataset.train().iter().map(|s| s.features.clone()).collect();
        let encoded = encoder.encode_batch(&inputs)?;
        let train_q: Vec<(Hypervector, usize)> = encoded
            .iter()
            .zip(dataset.train())
            .map(|(h, s)| (quantize_adaptive(h, cfg.scheme), s.label))
            .collect();
        let mut model = HdModel::train(dataset.num_classes(), cfg.dim, &train_q)?;

        // Stage 3: prune + retrain.
        let (mask, retrain_epochs_run) = if let Some(keep) = cfg.keep_dims {
            let keep = keep.min(cfg.dim);
            let prune_count = cfg.dim - keep;
            let mask = if prune_count > 0 {
                Some(PruneMask::select(
                    &model,
                    prune_count,
                    PruneStrategy::LeastEffectual,
                )?)
            } else {
                None
            };
            let mut epochs = 0;
            if let Some(m) = &mask {
                model.apply_mask(m)?;
                if cfg.retrain_epochs > 0 {
                    let report = model.retrain_masked(
                        &train_q,
                        m,
                        &RetrainConfig {
                            epochs: cfg.retrain_epochs,
                            ..RetrainConfig::default()
                        },
                    )?;
                    epochs = report.epochs_run();
                }
            }
            (mask, epochs)
        } else {
            (None, 0)
        };

        // Stage 4: sensitivity over *kept* dimensions.
        let kept_dims = mask.as_ref().map_or(cfg.dim, |m| m.kept());
        let sens = Sensitivity::new(dataset.features(), kept_dims);
        let delta_f_analytic = match cfg.sensitivity_mode {
            SensitivityMode::VectorL2 => sens.l2_quantized(cfg.scheme),
            SensitivityMode::PerDimension => sens.per_dimension(cfg.scheme),
        };
        let delta_f_empirical = {
            let mut worst = 0.0f64;
            for (h, _) in &train_q {
                let mut q = h.clone();
                if let Some(m) = &mask {
                    m.apply(&mut q)?;
                }
                worst = worst.max(q.l2_norm());
            }
            worst
        };

        // Clean accuracy before noise.
        let clean_model = PrivateModel {
            model: model.clone(),
            encoder: encoder.clone(),
            mask: mask.clone(),
            scheme: cfg.scheme,
        };
        let clean_accuracy = clean_model.accuracy(dataset.test_pairs())?;

        // Stage 5: noise. Noise is added to every dimension of the kept
        // space; pruned dimensions stay publicly zero (they carry no
        // data-dependent information).
        let mut mech = GaussianMechanism::new(cfg.budget, cfg.seed.wrapping_add(0x5EED));
        let mut noise = mech.noise_for_classes(model.num_classes(), cfg.dim, delta_f_analytic)?;
        if let Some(m) = &mask {
            for n in &mut noise {
                m.apply(n)?;
            }
        }
        model.add_class_noise(&noise)?;

        let private = PrivateModel {
            model,
            encoder,
            mask,
            scheme: cfg.scheme,
        };
        let private_accuracy = private.accuracy(dataset.test_pairs())?;

        let report = PrivateTrainingReport {
            clean_accuracy,
            private_accuracy,
            delta_f_analytic,
            delta_f_empirical,
            sigma: cfg.budget.gaussian_sigma(),
            noise_std: delta_f_analytic * cfg.budget.gaussian_sigma(),
            retrain_epochs_run,
            kept_dims,
        };
        Ok((private, report))
    }
}

/// The model-subtraction membership attack of §III-A.
///
/// The adversary holds two models trained on adjacent datasets (the
/// victim's input present in one, absent from the other), subtracts the
/// class hypervectors and decodes the difference with Eq. (10). Without
/// noise the difference *is* the victim's encoding and the reconstruction
/// correlates almost perfectly with the victim's features; with DP noise
/// the correlation collapses.
#[derive(Debug, Clone)]
pub struct MembershipAttack {
    decoder: Decoder,
}

impl MembershipAttack {
    /// Builds the attack from the (public) encoder basis.
    pub fn new(encoder: &ScalarEncoder) -> Self {
        Self {
            decoder: Decoder::new(encoder.item_memory().clone()),
        }
    }

    /// Runs the attack: subtract `with_victim − without_victim`, decode
    /// the victim's class difference, and return the Pearson correlation
    /// between the reconstruction and `victim_features` (1.0 = total
    /// privacy loss, ≈0 = attack defeated).
    ///
    /// # Errors
    ///
    /// Propagates model and decoding errors.
    pub fn run(
        &self,
        with_victim: &HdModel,
        without_victim: &HdModel,
        victim_class: usize,
        victim_features: &[f64],
    ) -> Result<f64, HdError> {
        let diff = with_victim.difference(without_victim)?;
        let leaked = diff.get(victim_class).ok_or(HdError::ClassOutOfRange {
            class: victim_class,
            num_classes: diff.len(),
        })?;
        let rec = self.decoder.decode(leaked)?;
        Ok(pearson(victim_features, rec.features()))
    }
}

/// Pearson correlation of two equal-length slices (0.0 when degenerate).
fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len()) as f64;
    if n == 0.0 {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma).powi(2);
        vb += (y - mb).powi(2);
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use privehd_data::surrogates;

    fn small_face() -> Dataset {
        surrogates::face(40, 15, 3)
    }

    #[test]
    fn pipeline_runs_and_reports() {
        let budget = PrivacyBudget::with_paper_delta(1.0).unwrap();
        let cfg = PrivateTrainingConfig::new(budget)
            .with_dim(2_000)
            .with_keep_dims(1_000)
            .with_seed(1);
        let (model, report) = PrivateTrainer::new(cfg).run(&small_face()).unwrap();
        assert_eq!(report.kept_dims, 1_000);
        assert!(report.delta_f_analytic > 0.0);
        assert!(report.sigma > 4.0);
        assert!(
            report.clean_accuracy > 0.6,
            "clean {}",
            report.clean_accuracy
        );
        assert_eq!(model.mask().unwrap().kept(), 1_000);
    }

    #[test]
    fn pruned_dims_are_zero_in_private_model() {
        let budget = PrivacyBudget::with_paper_delta(2.0).unwrap();
        let cfg = PrivateTrainingConfig::new(budget)
            .with_dim(1_000)
            .with_keep_dims(600)
            .with_seed(2);
        let (model, _) = PrivateTrainer::new(cfg).run(&small_face()).unwrap();
        let mask = model.mask().unwrap();
        for c in model.model().classes() {
            for j in mask.pruned_indices() {
                assert_eq!(c[j], 0.0);
            }
        }
    }

    #[test]
    fn tighter_budget_means_more_noise_and_not_more_accuracy() {
        let ds = small_face();
        let run = |eps: f64| {
            let cfg = PrivateTrainingConfig::new(PrivacyBudget::with_paper_delta(eps).unwrap())
                .with_dim(2_000)
                .with_keep_dims(1_000)
                .with_seed(3);
            PrivateTrainer::new(cfg).run(&ds).unwrap().1
        };
        let loose = run(8.0);
        let tight = run(0.05);
        assert!(tight.noise_std > loose.noise_std);
        assert!(
            tight.private_accuracy <= loose.private_accuracy + 0.1,
            "tight {} vs loose {}",
            tight.private_accuracy,
            loose.private_accuracy
        );
    }

    #[test]
    fn quantization_shrinks_empirical_sensitivity() {
        let ds = small_face();
        let budget = PrivacyBudget::with_paper_delta(1.0).unwrap();
        let run = |scheme| {
            let cfg = PrivateTrainingConfig::new(budget)
                .with_dim(1_500)
                .with_scheme(scheme)
                .with_seed(4);
            PrivateTrainer::new(cfg).run(&ds).unwrap().1
        };
        let full = run(QuantScheme::Full);
        let ternary = run(QuantScheme::Ternary);
        assert!(
            ternary.delta_f_empirical < full.delta_f_empirical / 3.0,
            "ternary {} vs full {}",
            ternary.delta_f_empirical,
            full.delta_f_empirical
        );
    }

    #[test]
    fn analytic_and_empirical_sensitivity_agree_for_ternary() {
        let ds = small_face();
        let budget = PrivacyBudget::with_paper_delta(1.0).unwrap();
        let cfg = PrivateTrainingConfig::new(budget)
            .with_dim(2_000)
            .with_scheme(QuantScheme::Ternary)
            .with_seed(5);
        let (_, report) = PrivateTrainer::new(cfg).run(&ds).unwrap();
        let ratio = report.delta_f_empirical / report.delta_f_analytic;
        assert!((0.8..1.2).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn membership_attack_succeeds_without_noise_and_fails_with() {
        let ds = small_face();
        let dim = 8_000;
        let encoder = ScalarEncoder::new(
            EncoderConfig::new(ds.features(), dim)
                .with_levels(100)
                .with_seed(6),
        )
        .unwrap();
        let victim = ds.train()[0].clone();
        let rest: Vec<(Hypervector, usize)> = ds.train()[1..]
            .iter()
            .map(|s| (encoder.encode(&s.features).unwrap(), s.label))
            .collect();
        let m_without = HdModel::train(2, dim, &rest).unwrap();
        let mut with_samples = rest.clone();
        with_samples.push((encoder.encode(&victim.features).unwrap(), victim.label));
        let m_with = HdModel::train(2, dim, &with_samples).unwrap();

        let attack = MembershipAttack::new(&encoder);
        // Cross-term noise in the decode is ~√(D_iv/D_hv) per feature, so
        // the clean attack is strong but not perfect at finite dimension.
        let corr_clean = attack
            .run(&m_with, &m_without, victim.label, &victim.features)
            .unwrap();
        assert!(corr_clean > 0.7, "clean attack correlation {corr_clean}");

        // Same attack against noised models.
        let budget = PrivacyBudget::with_paper_delta(1.0).unwrap();
        let sens = Sensitivity::new(ds.features(), dim).l2_full();
        let mut mech = GaussianMechanism::new(budget, 9);
        let mut m_with_noisy = m_with.clone();
        let mut m_without_noisy = m_without.clone();
        m_with_noisy
            .add_class_noise(&mech.noise_for_classes(2, dim, sens).unwrap())
            .unwrap();
        m_without_noisy
            .add_class_noise(&mech.noise_for_classes(2, dim, sens).unwrap())
            .unwrap();
        let corr_noisy = attack
            .run(
                &m_with_noisy,
                &m_without_noisy,
                victim.label,
                &victim.features,
            )
            .unwrap();
        assert!(
            corr_noisy.abs() < 0.3,
            "noisy attack correlation {corr_noisy}"
        );
    }

    #[test]
    fn pearson_basics() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[], &[]), 0.0);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn effective_dims_accounting() {
        let budget = PrivacyBudget::with_paper_delta(1.0).unwrap();
        let cfg = PrivateTrainingConfig::new(budget).with_dim(5_000);
        assert_eq!(cfg.effective_dims(), 5_000);
        assert_eq!(cfg.with_keep_dims(2_000).effective_dims(), 2_000);
    }
}
