//! Rényi differential privacy (RDP) accounting for the Gaussian
//! mechanism.
//!
//! The paper calibrates σ from the `δ ≥ (4/5)e^{−(σε)²/2}` bound of
//! Abadi et al.; modern practice tracks the Gaussian mechanism in Rényi
//! DP, where composition is exact and conversion back to (ε, δ) is
//! tighter than basic/advanced composition:
//!
//! * a Gaussian mechanism with noise multiplier σ satisfies
//!   `(α, α/(2σ²))`-RDP for every order `α > 1`;
//! * RDP composes additively order-wise;
//! * `(α, ρ)`-RDP implies `(ρ + ln(1/δ)/(α−1), δ)`-DP; the accountant
//!   optimizes over a grid of orders.
//!
//! This gives the Fig. 8 sweep a sound cumulative guarantee and lets a
//! user compare the paper's single-release calibration against what the
//! whole experiment actually spends.

use serde::{Deserialize, Serialize};

/// The default grid of Rényi orders the accountant optimizes over
/// (the grid used by common DP libraries).
fn default_orders() -> Vec<f64> {
    let mut orders: Vec<f64> = (2..=64).map(|a| a as f64).collect();
    orders.extend([1.25, 1.5, 1.75, 128.0, 256.0, 512.0]);
    orders
}

/// An RDP ledger for repeated Gaussian releases.
///
/// # Examples
///
/// ```
/// use privehd_privacy::renyi::RdpAccountant;
///
/// let mut acc = RdpAccountant::new();
/// // Ten releases at the paper's sigma for eps = 1 (~4.75).
/// for _ in 0..10 {
///     acc.add_gaussian(4.75);
/// }
/// let eps = acc.epsilon(1e-5).unwrap();
/// // Much tighter than basic composition's eps = 10.
/// assert!(eps < 10.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RdpAccountant {
    orders: Vec<f64>,
    /// Accumulated RDP ε at each order.
    rdp: Vec<f64>,
    releases: usize,
}

impl Default for RdpAccountant {
    fn default() -> Self {
        Self::new()
    }
}

impl RdpAccountant {
    /// An empty accountant over the default order grid.
    pub fn new() -> Self {
        let orders = default_orders();
        let rdp = vec![0.0; orders.len()];
        Self {
            orders,
            rdp,
            releases: 0,
        }
    }

    /// An empty accountant over a custom order grid.
    ///
    /// # Panics
    ///
    /// Panics if `orders` is empty or contains an order ≤ 1.
    pub fn with_orders(orders: Vec<f64>) -> Self {
        assert!(!orders.is_empty(), "need at least one Rényi order");
        assert!(
            orders.iter().all(|&a| a > 1.0),
            "Rényi orders must exceed 1"
        );
        let rdp = vec![0.0; orders.len()];
        Self {
            orders,
            rdp,
            releases: 0,
        }
    }

    /// Records one Gaussian release with noise multiplier `sigma`
    /// (noise std = Δf·σ for sensitivity Δf): adds `α/(2σ²)` at every
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not strictly positive.
    pub fn add_gaussian(&mut self, sigma: f64) {
        assert!(sigma > 0.0, "sigma must be positive");
        for (rho, &alpha) in self.rdp.iter_mut().zip(&self.orders) {
            *rho += alpha / (2.0 * sigma * sigma);
        }
        self.releases += 1;
    }

    /// Number of releases recorded.
    pub fn releases(&self) -> usize {
        self.releases
    }

    /// The accumulated RDP ε at each `(order, ρ)` pair.
    pub fn rdp_curve(&self) -> Vec<(f64, f64)> {
        self.orders
            .iter()
            .copied()
            .zip(self.rdp.iter().copied())
            .collect()
    }

    /// Converts the ledger to an (ε, δ)-DP guarantee, optimizing the
    /// order: `ε = min_α [ρ(α) + ln(1/δ)/(α−1)]`.
    ///
    /// Returns `None` for an empty ledger or `δ ∉ (0, 1)`.
    pub fn epsilon(&self, delta: f64) -> Option<f64> {
        if self.releases == 0 || !(delta > 0.0 && delta < 1.0) {
            return None;
        }
        self.orders
            .iter()
            .zip(&self.rdp)
            .map(|(&alpha, &rho)| rho + (1.0 / delta).ln() / (alpha - 1.0))
            .min_by(|a, b| a.partial_cmp(b).expect("finite epsilon"))
    }

    /// The order that achieves [`RdpAccountant::epsilon`] (diagnostics).
    pub fn optimal_order(&self, delta: f64) -> Option<f64> {
        if self.releases == 0 || !(delta > 0.0 && delta < 1.0) {
            return None;
        }
        self.orders
            .iter()
            .zip(&self.rdp)
            .min_by(|(a1, r1), (a2, r2)| {
                let e1 = *r1 + (1.0 / delta).ln() / (*a1 - 1.0);
                let e2 = *r2 + (1.0 / delta).ln() / (*a2 - 1.0);
                e1.partial_cmp(&e2).expect("finite epsilon")
            })
            .map(|(&alpha, _)| alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::PrivacyBudget;

    #[test]
    fn empty_ledger_has_no_guarantee() {
        let acc = RdpAccountant::new();
        assert!(acc.epsilon(1e-5).is_none());
        assert!(acc.optimal_order(1e-5).is_none());
    }

    #[test]
    fn single_release_is_close_to_the_paper_calibration() {
        // One Gaussian at the paper's sigma for eps = 1 must convert back
        // to an epsilon of the same order (RDP conversion is not exactly
        // the (4/5)e^{-x} bound, but must agree within ~2x).
        let budget = PrivacyBudget::with_paper_delta(1.0).unwrap();
        let mut acc = RdpAccountant::new();
        acc.add_gaussian(budget.gaussian_sigma());
        let eps = acc.epsilon(PrivacyBudget::PAPER_DELTA).unwrap();
        assert!((0.4..2.5).contains(&eps), "eps = {eps}");
    }

    #[test]
    fn rdp_composition_beats_basic_composition() {
        let budget = PrivacyBudget::with_paper_delta(1.0).unwrap();
        let sigma = budget.gaussian_sigma();
        let k = 20;
        let mut acc = RdpAccountant::new();
        for _ in 0..k {
            acc.add_gaussian(sigma);
        }
        let rdp_eps = acc.epsilon(1e-5).unwrap();
        let basic_eps = k as f64 * 1.0;
        assert!(
            rdp_eps < basic_eps,
            "rdp {rdp_eps} should beat basic {basic_eps}"
        );
        // Sub-linear growth: k releases cost ~sqrt(k) in epsilon.
        assert!(rdp_eps < 1.5 * (k as f64).sqrt());
    }

    #[test]
    fn epsilon_scales_inversely_with_sigma() {
        let mut weak = RdpAccountant::new();
        weak.add_gaussian(1.0);
        let mut strong = RdpAccountant::new();
        strong.add_gaussian(10.0);
        assert!(weak.epsilon(1e-5).unwrap() > strong.epsilon(1e-5).unwrap());
    }

    #[test]
    fn smaller_delta_costs_more_epsilon() {
        let mut acc = RdpAccountant::new();
        acc.add_gaussian(4.75);
        assert!(acc.epsilon(1e-9).unwrap() > acc.epsilon(1e-3).unwrap());
    }

    #[test]
    fn optimal_order_moves_with_sigma() {
        // High-noise mechanisms convert best at large alpha, low-noise at
        // small alpha; just verify the order is inside the grid and the
        // epsilon it implies matches the reported minimum.
        let mut acc = RdpAccountant::new();
        acc.add_gaussian(2.0);
        let alpha = acc.optimal_order(1e-5).unwrap();
        let eps = acc.epsilon(1e-5).unwrap();
        let rho = alpha / (2.0 * 4.0);
        assert!((eps - (rho + (1e5f64).ln() / (alpha - 1.0))).abs() < 1e-9);
    }

    #[test]
    fn custom_orders_validation() {
        let acc = RdpAccountant::with_orders(vec![2.0, 8.0]);
        assert_eq!(acc.rdp_curve().len(), 2);
    }

    #[test]
    #[should_panic(expected = "must exceed 1")]
    fn orders_below_one_rejected() {
        let _ = RdpAccountant::with_orders(vec![0.5]);
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn non_positive_sigma_rejected() {
        RdpAccountant::new().add_gaussian(0.0);
    }
}
