//! (ε, δ) privacy budgets and Gaussian-mechanism calibration.
//!
//! The paper adopts the (ε, δ)-differential-privacy relaxation (§II-B,
//! Eq. 8) and calibrates the Gaussian noise multiplier σ from
//!
//! ```text
//! δ ≥ (4/5) · exp(−(σε)²/2)        [Abadi et al., ref. 1]
//! ```
//!
//! i.e. `σ = √(2·ln(4/(5δ))) / ε`. For the paper's setting δ = 10⁻⁵ and
//! ε = 1 this gives σ ≈ 4.75, the value quoted in §IV-A.

use serde::{Deserialize, Serialize};

/// An (ε, δ) differential-privacy budget.
///
/// # Examples
///
/// ```
/// use privehd_privacy::PrivacyBudget;
///
/// let b = PrivacyBudget::new(2.0, 1e-5).unwrap();
/// assert!(b.gaussian_sigma() < PrivacyBudget::new(1.0, 1e-5).unwrap().gaussian_sigma());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrivacyBudget {
    epsilon: f64,
    delta: f64,
}

/// Error constructing a [`PrivacyBudget`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BudgetError {
    /// ε must be strictly positive and finite.
    InvalidEpsilon,
    /// δ must lie in (0, 1).
    InvalidDelta,
}

impl std::fmt::Display for BudgetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetError::InvalidEpsilon => write!(f, "epsilon must be positive and finite"),
            BudgetError::InvalidDelta => write!(f, "delta must lie strictly between 0 and 1"),
        }
    }
}

impl std::error::Error for BudgetError {}

impl PrivacyBudget {
    /// The δ = 10⁻⁵ the paper fixes for all experiments (§IV-A).
    pub const PAPER_DELTA: f64 = 1e-5;

    /// Creates a budget.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetError::InvalidEpsilon`] unless `epsilon > 0` and
    /// finite, and [`BudgetError::InvalidDelta`] unless `0 < delta < 1`.
    pub fn new(epsilon: f64, delta: f64) -> Result<Self, BudgetError> {
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(BudgetError::InvalidEpsilon);
        }
        if !(delta.is_finite() && delta > 0.0 && delta < 1.0) {
            return Err(BudgetError::InvalidDelta);
        }
        Ok(Self { epsilon, delta })
    }

    /// Budget with the paper's δ = 10⁻⁵.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetError::InvalidEpsilon`] for a non-positive ε.
    pub fn with_paper_delta(epsilon: f64) -> Result<Self, BudgetError> {
        Self::new(epsilon, Self::PAPER_DELTA)
    }

    /// The ε parameter.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The δ parameter.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The Gaussian noise multiplier σ satisfying
    /// `δ = (4/5)·exp(−(σε)²/2)`: `σ = √(2 ln(4/(5δ)))/ε`.
    ///
    /// The mechanism's noise standard deviation is `Δf·σ` (Eq. 8), where
    /// `Δf` is the ℓ2 sensitivity.
    pub fn gaussian_sigma(&self) -> f64 {
        (2.0 * (4.0 / (5.0 * self.delta)).ln()).sqrt() / self.epsilon
    }

    /// Inverse of [`PrivacyBudget::gaussian_sigma`]: the ε actually
    /// granted at this δ by a mechanism with noise multiplier `sigma`.
    ///
    /// Useful for reporting the achieved privacy of a given noise level
    /// (the "obtained ε" sweep of Fig. 8).
    pub fn epsilon_for_sigma(sigma: f64, delta: f64) -> f64 {
        (2.0 * (4.0 / (5.0 * delta)).ln()).sqrt() / sigma
    }

    /// Whether the δ-relaxed guarantee formally holds for this (σ, ε)
    /// pair: `δ ≥ (4/5)e^{−(σε)²/2}`.
    pub fn is_satisfied_by(&self, sigma: f64) -> bool {
        self.delta >= 0.8 * (-(sigma * self.epsilon).powi(2) / 2.0).exp()
    }
}

impl std::fmt::Display for PrivacyBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(ε={}, δ={})", self.epsilon, self.delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sigma_value() {
        // §IV-A: σ ≈ 4.75 for ε = 1, δ = 1e-5.
        let b = PrivacyBudget::with_paper_delta(1.0).unwrap();
        assert!(
            (b.gaussian_sigma() - 4.75).abs() < 0.05,
            "{}",
            b.gaussian_sigma()
        );
    }

    #[test]
    fn sigma_scales_inversely_with_epsilon() {
        let b1 = PrivacyBudget::with_paper_delta(1.0).unwrap();
        let b2 = PrivacyBudget::with_paper_delta(2.0).unwrap();
        assert!((b1.gaussian_sigma() / b2.gaussian_sigma() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn smaller_delta_needs_more_noise() {
        let loose = PrivacyBudget::new(1.0, 1e-3).unwrap();
        let tight = PrivacyBudget::new(1.0, 1e-7).unwrap();
        assert!(tight.gaussian_sigma() > loose.gaussian_sigma());
    }

    #[test]
    fn epsilon_for_sigma_inverts_gaussian_sigma() {
        let b = PrivacyBudget::new(3.0, 1e-5).unwrap();
        let eps = PrivacyBudget::epsilon_for_sigma(b.gaussian_sigma(), 1e-5);
        assert!((eps - 3.0).abs() < 1e-9);
    }

    #[test]
    fn satisfied_exactly_at_calibrated_sigma() {
        let b = PrivacyBudget::new(0.5, 1e-5).unwrap();
        let sigma = b.gaussian_sigma();
        assert!(b.is_satisfied_by(sigma * 1.0001));
        assert!(!b.is_satisfied_by(sigma * 0.9));
    }

    #[test]
    fn validation() {
        assert_eq!(
            PrivacyBudget::new(0.0, 0.5),
            Err(BudgetError::InvalidEpsilon)
        );
        assert_eq!(
            PrivacyBudget::new(-1.0, 0.5),
            Err(BudgetError::InvalidEpsilon)
        );
        assert_eq!(
            PrivacyBudget::new(f64::INFINITY, 0.5),
            Err(BudgetError::InvalidEpsilon)
        );
        assert_eq!(PrivacyBudget::new(1.0, 0.0), Err(BudgetError::InvalidDelta));
        assert_eq!(PrivacyBudget::new(1.0, 1.0), Err(BudgetError::InvalidDelta));
    }

    #[test]
    fn display_contains_both_parameters() {
        let b = PrivacyBudget::new(1.5, 1e-5).unwrap();
        let s = b.to_string();
        assert!(s.contains("1.5") && s.contains("0.00001"));
    }
}
