//! Privacy-budget accounting across multiple releases.
//!
//! The paper releases one noisy model, but any practical deployment
//! retrains and re-releases (new data, new dimensions, new ε sweeps —
//! exactly what Fig. 8 does experimentally). Each release consumes
//! budget; the accountant tracks the cumulative (ε, δ) guarantee under
//! the two classical composition theorems:
//!
//! * **basic (sequential) composition** — ε and δ add up;
//! * **advanced composition** (Dwork–Rothblum–Vadhan) — for `k`
//!   releases of an (ε, δ)-mechanism and slack δ′:
//!   `ε_total = ε·√(2k·ln(1/δ′)) + k·ε·(e^ε − 1)`,
//!   `δ_total = k·δ + δ′`.

use serde::{Deserialize, Serialize};

use crate::budget::PrivacyBudget;

/// A ledger of privacy expenditures.
///
/// # Examples
///
/// ```
/// use privehd_privacy::accountant::PrivacyAccountant;
/// use privehd_privacy::PrivacyBudget;
///
/// let mut ledger = PrivacyAccountant::new();
/// let per_release = PrivacyBudget::with_paper_delta(1.0).unwrap();
/// for _ in 0..4 {
///     ledger.spend(per_release);
/// }
/// let (eps, delta) = ledger.basic_composition();
/// assert_eq!(eps, 4.0);
/// assert!((delta - 4e-5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PrivacyAccountant {
    spends: Vec<PrivacyBudget>,
}

impl PrivacyAccountant {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one release at `budget`.
    pub fn spend(&mut self, budget: PrivacyBudget) {
        self.spends.push(budget);
    }

    /// Number of releases recorded.
    pub fn releases(&self) -> usize {
        self.spends.len()
    }

    /// The individual expenditures, in order.
    pub fn spends(&self) -> &[PrivacyBudget] {
        &self.spends
    }

    /// Cumulative (ε, δ) under basic sequential composition.
    pub fn basic_composition(&self) -> (f64, f64) {
        (
            self.spends.iter().map(|b| b.epsilon()).sum(),
            self.spends.iter().map(|b| b.delta()).sum(),
        )
    }

    /// Cumulative (ε, δ) under advanced composition with slack
    /// `delta_prime`, assuming homogeneous releases (uses the maximum
    /// per-release ε/δ as the bound when they differ).
    ///
    /// Returns `None` for an empty ledger or a non-positive slack.
    pub fn advanced_composition(&self, delta_prime: f64) -> Option<(f64, f64)> {
        if self.spends.is_empty() || delta_prime <= 0.0 {
            return None;
        }
        let k = self.spends.len() as f64;
        let eps = self
            .spends
            .iter()
            .map(|b| b.epsilon())
            .fold(0.0f64, f64::max);
        let delta = self.spends.iter().map(|b| b.delta()).fold(0.0f64, f64::max);
        let eps_total =
            eps * (2.0 * k * (1.0 / delta_prime).ln()).sqrt() + k * eps * (eps.exp() - 1.0);
        Some((eps_total, k * delta + delta_prime))
    }

    /// The tighter of basic and advanced composition at the given slack.
    ///
    /// Advanced composition only wins for many releases of small-ε
    /// mechanisms; this picks whichever bound is smaller in ε.
    pub fn best_bound(&self, delta_prime: f64) -> (f64, f64) {
        let basic = self.basic_composition();
        match self.advanced_composition(delta_prime) {
            Some(adv) if adv.0 < basic.0 => adv,
            _ => basic,
        }
    }

    /// Whether the cumulative spend (basic composition) stays within a
    /// target budget.
    pub fn within(&self, target: &PrivacyBudget) -> bool {
        let (eps, delta) = self.basic_composition();
        eps <= target.epsilon() && delta <= target.delta()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget(eps: f64) -> PrivacyBudget {
        PrivacyBudget::with_paper_delta(eps).unwrap()
    }

    #[test]
    fn empty_ledger_spends_nothing() {
        let a = PrivacyAccountant::new();
        assert_eq!(a.basic_composition(), (0.0, 0.0));
        assert_eq!(a.releases(), 0);
        assert!(a.advanced_composition(1e-6).is_none());
    }

    #[test]
    fn basic_composition_adds_up() {
        let mut a = PrivacyAccountant::new();
        a.spend(budget(1.0));
        a.spend(budget(2.0));
        a.spend(budget(0.5));
        let (eps, delta) = a.basic_composition();
        assert!((eps - 3.5).abs() < 1e-12);
        assert!((delta - 3e-5).abs() < 1e-12);
    }

    #[test]
    fn advanced_beats_basic_for_many_small_releases() {
        let mut a = PrivacyAccountant::new();
        for _ in 0..100 {
            a.spend(budget(0.1));
        }
        let (basic_eps, _) = a.basic_composition();
        let (adv_eps, adv_delta) = a.advanced_composition(1e-6).unwrap();
        assert!(
            adv_eps < basic_eps,
            "advanced {adv_eps} vs basic {basic_eps}"
        );
        assert!(adv_delta > 100.0 * PrivacyBudget::PAPER_DELTA);
    }

    #[test]
    fn advanced_loses_for_few_large_releases() {
        let mut a = PrivacyAccountant::new();
        a.spend(budget(8.0));
        let (basic_eps, _) = a.basic_composition();
        let (adv_eps, _) = a.advanced_composition(1e-6).unwrap();
        assert!(adv_eps > basic_eps);
        // best_bound picks basic in that case.
        assert_eq!(a.best_bound(1e-6).0, basic_eps);
    }

    #[test]
    fn within_checks_both_parameters() {
        let mut a = PrivacyAccountant::new();
        a.spend(budget(1.0));
        a.spend(budget(1.0));
        assert!(a.within(&PrivacyBudget::new(2.5, 1e-4).unwrap()));
        assert!(!a.within(&PrivacyBudget::new(1.5, 1e-4).unwrap()));
        assert!(!a.within(&PrivacyBudget::new(2.5, 1e-5).unwrap()));
    }

    #[test]
    fn invalid_slack_is_rejected() {
        let mut a = PrivacyAccountant::new();
        a.spend(budget(1.0));
        assert!(a.advanced_composition(0.0).is_none());
        assert!(a.advanced_composition(-1.0).is_none());
    }

    #[test]
    fn heterogeneous_releases_use_the_max_bound() {
        let mut a = PrivacyAccountant::new();
        a.spend(budget(0.1));
        a.spend(budget(0.5));
        let (adv_eps, _) = a.advanced_composition(1e-6).unwrap();
        // Bound computed at eps = 0.5, k = 2.
        let expected =
            0.5 * (2.0f64 * 2.0 * (1e6f64).ln()).sqrt() + 2.0 * 0.5 * (0.5f64.exp() - 1.0);
        assert!((adv_eps - expected).abs() < 1e-9);
    }
}
