//! Additive-noise mechanisms (Eq. 8 and the Laplace mechanism of §II-B).
//!
//! A mechanism turns a sensitivity `Δf` and a privacy budget into noise
//! hypervectors that are added to the trained class hypervectors —
//! `M(D) = f(D) + noise` — *after* aggregation, which is why Prive-HD
//! needs no extra training epochs (§IV-A).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use privehd_core::{HdError, Hypervector};
use privehd_data::NormalSampler;

use crate::budget::PrivacyBudget;

/// A randomized additive-noise mechanism.
pub trait Mechanism {
    /// The noise standard deviation (Gaussian) or scale (Laplace) this
    /// mechanism injects per dimension for sensitivity `delta_f`.
    fn noise_scale(&self, delta_f: f64) -> f64;

    /// Draws one noise hypervector of dimension `dim` for sensitivity
    /// `delta_f`.
    ///
    /// # Errors
    ///
    /// Returns [`HdError::EmptyDimension`] if `dim == 0`.
    fn noise_hypervector(&mut self, dim: usize, delta_f: f64) -> Result<Hypervector, HdError>;

    /// Draws one noise hypervector per class — the full Eq. (8) output
    /// perturbation (`f` and the noise are `D_hv·|C|`-dimensional).
    ///
    /// # Errors
    ///
    /// Returns [`HdError::EmptyDimension`] if `dim == 0`.
    fn noise_for_classes(
        &mut self,
        num_classes: usize,
        dim: usize,
        delta_f: f64,
    ) -> Result<Vec<Hypervector>, HdError> {
        (0..num_classes)
            .map(|_| self.noise_hypervector(dim, delta_f))
            .collect()
    }
}

/// The Gaussian mechanism of Eq. (8): noise `G(0, (Δf·σ)²)` per
/// dimension, with σ calibrated from the (ε, δ) budget.
///
/// # Examples
///
/// ```
/// use privehd_privacy::{GaussianMechanism, Mechanism, PrivacyBudget};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let budget = PrivacyBudget::with_paper_delta(1.0)?;
/// let mut mech = GaussianMechanism::new(budget, 42);
/// let noise = mech.noise_hypervector(10_000, 22.3)?;
/// assert_eq!(noise.dim(), 10_000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GaussianMechanism {
    budget: PrivacyBudget,
    rng: StdRng,
    normal: NormalSampler,
}

impl GaussianMechanism {
    /// Creates the mechanism with a deterministic RNG seed.
    ///
    /// (Determinism is for experiment reproducibility; a production
    /// deployment would seed from an OS entropy source.)
    pub fn new(budget: PrivacyBudget, seed: u64) -> Self {
        Self {
            budget,
            rng: StdRng::seed_from_u64(seed),
            normal: NormalSampler::new(),
        }
    }

    /// The budget this mechanism enforces.
    pub fn budget(&self) -> &PrivacyBudget {
        &self.budget
    }
}

impl Mechanism for GaussianMechanism {
    fn noise_scale(&self, delta_f: f64) -> f64 {
        delta_f * self.budget.gaussian_sigma()
    }

    fn noise_hypervector(&mut self, dim: usize, delta_f: f64) -> Result<Hypervector, HdError> {
        let mut h = Hypervector::zeros(dim)?;
        let std = self.noise_scale(delta_f);
        self.normal.fill(&mut self.rng, h.as_mut_slice(), 0.0, std);
        Ok(h)
    }
}

/// The Laplace mechanism of Dwork et al. (§II-B): noise `Lap(Δf/ε)` per
/// dimension, using the ℓ1 sensitivity.
///
/// Included for the comparison the paper makes in §III-B: for HD the ℓ1
/// sensitivity (Eq. 11) is so large that the Laplace route is hopeless,
/// which is why Prive-HD targets the Gaussian (ε, δ) mechanism instead.
#[derive(Debug, Clone)]
pub struct LaplaceMechanism {
    epsilon: f64,
    rng: StdRng,
}

impl LaplaceMechanism {
    /// Creates the mechanism for a pure-ε budget.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not strictly positive.
    pub fn new(epsilon: f64, seed: u64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        Self {
            epsilon,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The ε parameter.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn sample_laplace(&mut self, scale: f64) -> f64 {
        // Inverse-CDF sampling: u ∈ (−1/2, 1/2),
        // x = −b·sgn(u)·ln(1 − 2|u|).
        let u: f64 = self.rng.gen::<f64>() - 0.5;
        -scale * u.signum() * (1.0 - 2.0 * u.abs()).max(f64::MIN_POSITIVE).ln()
    }
}

impl Mechanism for LaplaceMechanism {
    fn noise_scale(&self, delta_f: f64) -> f64 {
        delta_f / self.epsilon
    }

    fn noise_hypervector(&mut self, dim: usize, delta_f: f64) -> Result<Hypervector, HdError> {
        let mut h = Hypervector::zeros(dim)?;
        let b = self.noise_scale(delta_f);
        for v in h.as_mut_slice() {
            *v = self.sample_laplace(b);
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_noise_has_calibrated_std() {
        let budget = PrivacyBudget::with_paper_delta(1.0).unwrap();
        let mut mech = GaussianMechanism::new(budget, 7);
        let delta_f = 10.0;
        let expected_std = mech.noise_scale(delta_f);
        let h = mech.noise_hypervector(200_000, delta_f).unwrap();
        let measured = h.variance().sqrt();
        assert!(
            (measured / expected_std - 1.0).abs() < 0.02,
            "measured {measured}, expected {expected_std}"
        );
        assert!(h.mean().abs() < expected_std * 0.05);
    }

    #[test]
    fn gaussian_scale_is_delta_f_times_sigma() {
        let budget = PrivacyBudget::with_paper_delta(2.0).unwrap();
        let mech = GaussianMechanism::new(budget, 0);
        assert!((mech.noise_scale(5.0) - 5.0 * budget.gaussian_sigma()).abs() < 1e-12);
    }

    #[test]
    fn gaussian_is_reproducible_per_seed() {
        let budget = PrivacyBudget::with_paper_delta(1.0).unwrap();
        let mut a = GaussianMechanism::new(budget, 3);
        let mut b = GaussianMechanism::new(budget, 3);
        assert_eq!(
            a.noise_hypervector(64, 1.0).unwrap(),
            b.noise_hypervector(64, 1.0).unwrap()
        );
    }

    #[test]
    fn laplace_noise_has_correct_scale() {
        // Lap(b) has variance 2b².
        let mut mech = LaplaceMechanism::new(0.5, 11);
        let delta_f = 3.0;
        let b = mech.noise_scale(delta_f); // 6.0
        assert_eq!(b, 6.0);
        let h = mech.noise_hypervector(200_000, delta_f).unwrap();
        let var = h.variance();
        assert!(
            (var / (2.0 * b * b) - 1.0).abs() < 0.05,
            "var {var} vs expected {}",
            2.0 * b * b
        );
    }

    #[test]
    fn per_class_noise_is_independent() {
        let budget = PrivacyBudget::with_paper_delta(1.0).unwrap();
        let mut mech = GaussianMechanism::new(budget, 5);
        let noises = mech.noise_for_classes(3, 1_024, 1.0).unwrap();
        assert_eq!(noises.len(), 3);
        assert_ne!(noises[0], noises[1]);
        assert_ne!(noises[1], noises[2]);
    }

    #[test]
    fn zero_dim_is_rejected() {
        let budget = PrivacyBudget::with_paper_delta(1.0).unwrap();
        let mut mech = GaussianMechanism::new(budget, 5);
        assert_eq!(mech.noise_hypervector(0, 1.0), Err(HdError::EmptyDimension));
    }
}
