//! # privehd-privacy
//!
//! Differential privacy for HD computing — the training-side half of
//! Prive-HD (§II-B, §III-B of the paper).
//!
//! * [`budget`] — (ε, δ) privacy budgets and the Gaussian-mechanism
//!   calibration `δ ≥ (4/5)·exp(−(σε)²/2)` used by the paper (after
//!   Abadi et al.).
//! * [`accountant`] — cumulative budget tracking across releases under
//!   basic and advanced composition.
//! * [`renyi`] — Rényi-DP accounting of the Gaussian mechanism, the
//!   tight modern alternative for the same ledgers.
//! * [`mechanism`] — the Gaussian mechanism of Eq. (8) and a Laplace
//!   mechanism (Eq. after 7) for comparison, producing noise
//!   hypervectors.
//! * [`sensitivity`] — analytic ℓ1/ℓ2 sensitivities of the HD encoding
//!   (Eq. 11, 12, 14) plus empirical measurement.
//! * [`pipeline`] — the full Prive-HD private training pipeline:
//!   encode-with-quantization → train → prune → retrain → noise, plus the
//!   model-subtraction membership attack it defends against.
//!
//! ## Example
//!
//! ```
//! use privehd_privacy::budget::PrivacyBudget;
//!
//! // The paper's setting: δ = 1e-5, ε = 1 → σ ≈ 4.75.
//! let budget = PrivacyBudget::new(1.0, 1e-5).unwrap();
//! let sigma = budget.gaussian_sigma();
//! assert!((sigma - 4.75).abs() < 0.05);
//! ```

// No unsafe: every unsafe site in the workspace lives in privehd-core
// under the analyze unsafe-audit ledger (see docs/ANALYSIS.md).
#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod accountant;
pub mod budget;
pub mod mechanism;
pub mod pipeline;
pub mod renyi;
pub mod sensitivity;

pub use accountant::PrivacyAccountant;
pub use budget::PrivacyBudget;
pub use mechanism::{GaussianMechanism, LaplaceMechanism, Mechanism};
pub use pipeline::{
    MembershipAttack, PrivateModel, PrivateTrainer, PrivateTrainingConfig, PrivateTrainingReport,
    SensitivityMode,
};
pub use renyi::RdpAccountant;
pub use sensitivity::Sensitivity;
