//! Property-based tests for the privacy machinery: budget calibration,
//! sensitivity monotonicity, mechanism scaling.

use proptest::prelude::*;

use privehd_core::QuantScheme;
use privehd_privacy::{GaussianMechanism, LaplaceMechanism, Mechanism, PrivacyBudget, Sensitivity};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sigma_decreases_in_epsilon(eps1 in 0.01f64..10.0, eps2 in 0.01f64..10.0) {
        prop_assume!(eps1 < eps2);
        let b1 = PrivacyBudget::with_paper_delta(eps1).unwrap();
        let b2 = PrivacyBudget::with_paper_delta(eps2).unwrap();
        prop_assert!(b1.gaussian_sigma() > b2.gaussian_sigma());
    }

    #[test]
    fn sigma_decreases_in_delta(eps in 0.1f64..5.0, d1 in 1e-9f64..1e-2, d2 in 1e-9f64..1e-2) {
        prop_assume!(d1 < d2);
        let b1 = PrivacyBudget::new(eps, d1).unwrap();
        let b2 = PrivacyBudget::new(eps, d2).unwrap();
        prop_assert!(b1.gaussian_sigma() >= b2.gaussian_sigma());
    }

    #[test]
    fn calibrated_sigma_satisfies_its_own_budget(eps in 0.01f64..10.0) {
        let b = PrivacyBudget::with_paper_delta(eps).unwrap();
        prop_assert!(b.is_satisfied_by(b.gaussian_sigma() * (1.0 + 1e-9)));
    }

    #[test]
    fn epsilon_sigma_round_trip(eps in 0.01f64..10.0, delta in 1e-9f64..1e-2) {
        let b = PrivacyBudget::new(eps, delta).unwrap();
        let eps_back = PrivacyBudget::epsilon_for_sigma(b.gaussian_sigma(), delta);
        prop_assert!((eps_back / eps - 1.0).abs() < 1e-9);
    }

    #[test]
    fn l2_sensitivity_is_monotone_in_dim(features in 1usize..2_000, d1 in 1usize..20_000, d2 in 1usize..20_000) {
        prop_assume!(d1 < d2);
        let s1 = Sensitivity::new(features, d1);
        let s2 = Sensitivity::new(features, d2);
        prop_assert!(s1.l2_full() <= s2.l2_full());
        for scheme in [QuantScheme::Bipolar, QuantScheme::Ternary, QuantScheme::TernaryBiased, QuantScheme::TwoBit] {
            prop_assert!(s1.l2_quantized(scheme) <= s2.l2_quantized(scheme));
        }
    }

    #[test]
    fn quantized_sensitivity_below_full_for_typical_shapes(features in 100usize..2_000, dim in 100usize..20_000) {
        // For D_iv ≥ 5 every quantized alphabet has smaller ℓ2 mass than
        // the CLT-scale full-precision encoding.
        let s = Sensitivity::new(features, dim);
        for scheme in [QuantScheme::Bipolar, QuantScheme::Ternary, QuantScheme::TernaryBiased, QuantScheme::TwoBit] {
            prop_assert!(s.l2_quantized(scheme) < s.l2_full());
        }
    }

    #[test]
    fn sensitivity_ordering_is_stable(features in 1usize..2_000, dim in 1usize..20_000) {
        // Fig. 5(b) ordering holds at every dimension.
        let s = Sensitivity::new(features, dim);
        prop_assert!(s.l2_quantized(QuantScheme::TernaryBiased) <= s.l2_quantized(QuantScheme::Ternary));
        prop_assert!(s.l2_quantized(QuantScheme::Ternary) <= s.l2_quantized(QuantScheme::Bipolar));
        prop_assert!(s.l2_quantized(QuantScheme::Bipolar) <= s.l2_quantized(QuantScheme::TwoBit));
    }

    #[test]
    fn gaussian_noise_scale_is_linear_in_sensitivity(df in 0.0f64..1_000.0, k in 0.1f64..10.0) {
        let budget = PrivacyBudget::with_paper_delta(1.0).unwrap();
        let mech = GaussianMechanism::new(budget, 0);
        let a = mech.noise_scale(df);
        let b = mech.noise_scale(df * k);
        prop_assert!((b - a * k).abs() < 1e-9 * (1.0 + b.abs()));
    }

    #[test]
    fn laplace_scale_is_delta_f_over_eps(df in 0.1f64..1_000.0, eps in 0.01f64..10.0) {
        let mech = LaplaceMechanism::new(eps, 0);
        prop_assert!((mech.noise_scale(df) - df / eps).abs() < 1e-9);
    }

    #[test]
    fn noise_hypervector_has_requested_dim(dim in 1usize..4_096) {
        let budget = PrivacyBudget::with_paper_delta(1.0).unwrap();
        let mut mech = GaussianMechanism::new(budget, 1);
        prop_assert_eq!(mech.noise_hypervector(dim, 1.0).unwrap().dim(), dim);
    }
}
