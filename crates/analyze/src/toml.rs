//! Minimal TOML-subset reader for the analysis manifests.
//!
//! `vendor/` has no `toml` crate, and the two manifests
//! (`analysis/unsafe_ledger.toml`, `analysis/wire_frozen.toml`) only
//! need `[[table]]` arrays and `[table]` sections of `key = "string"`
//! pairs, plus `#` comments. This parser supports exactly that and
//! errors on anything else rather than guessing.

use std::collections::BTreeMap;

/// One `[section]` or `[[array-entry]]` with its string key/values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Section name (the text inside the brackets).
    pub name: String,
    /// True for `[[name]]` array-of-tables entries.
    pub is_array_entry: bool,
    /// `key = "value"` pairs in order of appearance.
    pub entries: BTreeMap<String, String>,
    /// 1-based line of the section header.
    pub line: usize,
}

/// Parses the supported TOML subset; returns sections in file order.
pub fn parse(src: &str) -> Result<Vec<Section>, String> {
    let mut sections: Vec<Section> = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(inner) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            sections.push(Section {
                name: inner.trim().to_string(),
                is_array_entry: true,
                entries: BTreeMap::new(),
                line: lineno,
            });
        } else if let Some(inner) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            sections.push(Section {
                name: inner.trim().to_string(),
                is_array_entry: false,
                entries: BTreeMap::new(),
                line: lineno,
            });
        } else if let Some((key, value)) = line.split_once('=') {
            let key = key.trim();
            let value = parse_string(value.trim())
                .ok_or_else(|| format!("line {lineno}: expected a quoted string value"))?;
            let Some(section) = sections.last_mut() else {
                return Err(format!("line {lineno}: key `{key}` before any [section]"));
            };
            if section.entries.insert(key.to_string(), value).is_some() {
                return Err(format!("line {lineno}: duplicate key `{key}`"));
            }
        } else {
            return Err(format!(
                "line {lineno}: unsupported TOML construct `{line}`"
            ));
        }
    }
    Ok(sections)
}

/// Drops a `#` comment, respecting `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, ch) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match ch {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses a double-quoted TOML string with `\"` / `\\` escapes.
fn parse_string(v: &str) -> Option<String> {
    let inner = v.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(ch) = chars.next() {
        if ch == '\\' {
            match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                _ => return None,
            }
        } else if ch == '"' {
            // An unescaped quote inside the body means the suffix we
            // stripped wasn't this string's terminator.
            return None;
        } else {
            out.push(ch);
        }
    }
    Some(out)
}

/// Serializes sections back into the same subset (used by
/// `--emit-ledger` so regenerated manifests round-trip).
pub fn serialize(sections: &[Section]) -> String {
    let mut out = String::new();
    for s in sections {
        if !out.is_empty() {
            out.push('\n');
        }
        if s.is_array_entry {
            out.push_str(&format!("[[{}]]\n", s.name));
        } else {
            out.push_str(&format!("[{}]\n", s.name));
        }
        for (k, v) in &s.entries {
            let escaped = v.replace('\\', "\\\\").replace('"', "\\\"");
            out.push_str(&format!("{k} = \"{escaped}\"\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_array_of_tables() {
        let src = "# ledger\n[[unsafe]]\nfile = \"a.rs\"\nhash = \"fnv64:00\"\n\n[[unsafe]]\nfile = \"b.rs\"\nhash = \"fnv64:01\"\n";
        let sections = parse(src).unwrap();
        assert_eq!(sections.len(), 2);
        assert!(sections[0].is_array_entry);
        assert_eq!(sections[0].entries["file"], "a.rs");
        assert_eq!(sections[1].entries["hash"], "fnv64:01");
    }

    #[test]
    fn parses_plain_section_and_comments() {
        let src = "[wire]\nheader = \"fnv64:aa\" # trailing comment\nnote = \"has # inside\"\n";
        let sections = parse(src).unwrap();
        assert_eq!(sections[0].name, "wire");
        assert_eq!(sections[0].entries["header"], "fnv64:aa");
        assert_eq!(sections[0].entries["note"], "has # inside");
    }

    #[test]
    fn rejects_unquoted_values_and_orphan_keys() {
        assert!(parse("[s]\nx = 3\n").is_err());
        assert!(parse("x = \"y\"\n").is_err());
        assert!(parse("[s]\nx = \"a\"\nx = \"b\"\n").is_err());
    }

    #[test]
    fn escapes_round_trip_through_serialize() {
        let src = "[[e]]\nmsg = \"say \\\"hi\\\" \\\\ done\"\n";
        let sections = parse(src).unwrap();
        assert_eq!(sections[0].entries["msg"], "say \"hi\" \\ done");
        let re = parse(&serialize(&sections)).unwrap();
        assert_eq!(re, sections);
    }
}
