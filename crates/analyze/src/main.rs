//! `privehd-analyze` CLI: run the workspace rules, explain them, or
//! regenerate the audit manifests.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use privehd_analyze::{analyze_workspace, emit_frozen, emit_ledger, rules};

const USAGE: &str = "\
privehd-analyze — repo-specific static analysis for the Prive-HD workspace

USAGE:
    privehd-analyze --workspace [--root <path>]   run every rule; exit 1 on findings
    privehd-analyze --explain <rule>              print a rule's rationale and fix pattern
    privehd-analyze --list-rules                  list rules with one-line summaries
    privehd-analyze --emit-ledger [--root <path>] print a fresh analysis/unsafe_ledger.toml
    privehd-analyze --emit-frozen [--root <path>] print a fresh analysis/wire_frozen.toml

The workspace root is taken from --root, else $CARGO_MANIFEST_DIR/../..
(set under `cargo run`), else the nearest ancestor of the current
directory containing both `Cargo.toml` and `crates/`.";

enum Mode {
    Workspace,
    Explain(String),
    ListRules,
    EmitLedger,
    EmitFrozen,
}

fn main() -> ExitCode {
    let mut mode = None;
    let mut root_flag = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => mode = Some(Mode::Workspace),
            "--list-rules" => mode = Some(Mode::ListRules),
            "--emit-ledger" => mode = Some(Mode::EmitLedger),
            "--emit-frozen" => mode = Some(Mode::EmitFrozen),
            "--explain" => match args.next() {
                Some(rule) => mode = Some(Mode::Explain(rule)),
                None => return usage_error("--explain needs a rule name"),
            },
            "--root" => match args.next() {
                Some(p) => root_flag = Some(PathBuf::from(p)),
                None => return usage_error("--root needs a path"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }
    let Some(mode) = mode else {
        return usage_error("no mode given");
    };

    match mode {
        Mode::ListRules => {
            for r in rules::RULES {
                println!("{:<20} {}", r.name, r.brief);
            }
            ExitCode::SUCCESS
        }
        Mode::Explain(name) => match rules::rule_info(&name) {
            Some(r) => {
                println!("{}\n{}\n\n{}", r.name, "=".repeat(r.name.len()), r.explain);
                ExitCode::SUCCESS
            }
            None => {
                eprintln!(
                    "unknown rule `{name}`; known rules: {}",
                    rules::RULES
                        .iter()
                        .map(|r| r.name)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                ExitCode::from(2)
            }
        },
        Mode::Workspace | Mode::EmitLedger | Mode::EmitFrozen => {
            let root = match resolve_root(root_flag) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            };
            let report = match analyze_workspace(&root) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            };
            match mode {
                Mode::EmitLedger => {
                    print!("{}", emit_ledger(&report.unsafe_sites));
                    ExitCode::SUCCESS
                }
                Mode::EmitFrozen => {
                    print!("{}", emit_frozen(&report.frozen));
                    ExitCode::SUCCESS
                }
                _ => {
                    for d in &report.diagnostics {
                        println!("{d}");
                    }
                    if report.diagnostics.is_empty() {
                        println!(
                            "analyze: clean — {} files, {} audited unsafe sites, {} frozen wire regions",
                            report.files,
                            report.unsafe_sites.len(),
                            report.frozen.len()
                        );
                        ExitCode::SUCCESS
                    } else {
                        println!(
                            "analyze: {} finding(s) across {} files (try `privehd-analyze --explain <rule>`)",
                            report.diagnostics.len(),
                            report.files
                        );
                        ExitCode::FAILURE
                    }
                }
            }
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

/// Finds the workspace root: explicit flag, the crate's own manifest
/// location (under `cargo run`), or ancestor search from the cwd.
fn resolve_root(flag: Option<PathBuf>) -> Result<PathBuf, String> {
    if let Some(r) = flag {
        return Ok(r);
    }
    if let Ok(manifest_dir) = std::env::var("CARGO_MANIFEST_DIR") {
        let candidate = PathBuf::from(&manifest_dir).join("../..");
        if candidate.join("Cargo.toml").is_file() && candidate.join("crates").is_dir() {
            return candidate
                .canonicalize()
                .map_err(|e| format!("canonicalize {manifest_dir}/../..: {e}"));
        }
    }
    let mut dir = std::env::current_dir().map_err(|e| format!("current_dir: {e}"))?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err(
                "could not locate the workspace root (no ancestor with Cargo.toml + crates/); \
                 pass --root"
                    .to_string(),
            );
        }
    }
}
