//! Diagnostics: what a rule reports and how it renders.

use std::fmt;

/// One finding from one rule at one source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule name (e.g. `no-panic-path`).
    pub rule: String,
    /// `/`-separated path relative to the analysis root.
    pub file: String,
    /// 1-based line of the finding.
    pub line: usize,
    /// Human-facing explanation of this specific finding.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic.
    pub fn new(
        rule: impl Into<String>,
        file: impl Into<String>,
        line: usize,
        message: impl Into<String>,
    ) -> Self {
        Self {
            rule: rule.into(),
            file: file.into(),
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "error[{}]: {}:{}: {}",
            self.rule, self.file, self.line, self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rule_file_line_message() {
        let d = Diagnostic::new("no-panic-path", "crates/serve/src/engine.rs", 42, "unwrap");
        assert_eq!(
            d.to_string(),
            "error[no-panic-path]: crates/serve/src/engine.rs:42: unwrap"
        );
    }
}
