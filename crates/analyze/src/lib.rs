//! Repo-specific static analysis for the Prive-HD workspace.
//!
//! `privehd-analyze` walks the workspace sources with a small
//! comment/string/char-literal-aware lexer (no `syn`) and enforces the
//! invariants that `rustc` and `clippy` cannot express:
//!
//! - [`rules::unsafe_ledger`] — every `unsafe` site has a `// SAFETY:`
//!   comment and an audited entry in `analysis/unsafe_ledger.toml`.
//! - [`rules::no_panic`] — no panic-capable constructs on the serve
//!   request path.
//! - [`rules::atomic_ordering`] — non-`SeqCst` orderings carry a
//!   justification comment.
//! - [`rules::nonblocking`] — no blocking calls inside marked
//!   poll-loop regions.
//! - [`rules::wire_freeze`] — frozen wire constants hash-match
//!   `analysis/wire_frozen.toml`.
//!
//! See `docs/ANALYSIS.md` for the rule catalog and review policy, and
//! `--explain <rule>` for inline rationale.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod diag;
pub mod hash;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod toml;

use std::collections::{BTreeMap, HashSet};
use std::path::{Path, PathBuf};

use diag::Diagnostic;
use source::SourceFile;

/// Files where `no-panic-path` applies: the wire poll loop, the
/// engine, the codec, and the compiled-plan dispatch — the path a
/// request travels.
pub const PANIC_PATH_SCOPE: &[&str] = &[
    "crates/serve/src/wire/server.rs",
    "crates/serve/src/engine.rs",
    "crates/serve/src/wire/frame.rs",
    "crates/core/src/plan.rs",
];

/// Directory names the workspace walker never descends into.
/// `vendor/` holds offline stand-ins for third-party crates (audited
/// as a unit, not per-site); `fixtures/` holds deliberately-violating
/// rule fixtures.
const SKIP_DIRS: &[&str] = &["target", ".git", "vendor", "fixtures", "node_modules"];

/// The audit manifests under `analysis/`.
#[derive(Debug, Clone, Default)]
pub struct Manifests {
    /// Unsafe-ledger entries: `(file, hash, context)`.
    pub ledger: Vec<(String, String, String)>,
    /// Wire-freeze digests: file → hash.
    pub frozen: BTreeMap<String, String>,
}

impl Manifests {
    /// Loads both manifests from `<root>/analysis/`. A missing file is
    /// an empty manifest (every governed site then reports).
    pub fn load(root: &Path) -> Result<Self, String> {
        let mut m = Self::default();
        let ledger_path = root.join("analysis/unsafe_ledger.toml");
        if let Ok(src) = std::fs::read_to_string(&ledger_path) {
            for s in toml::parse(&src).map_err(|e| format!("{}: {e}", ledger_path.display()))? {
                if s.name != "unsafe" || !s.is_array_entry {
                    return Err(format!(
                        "{}: line {}: expected only [[unsafe]] entries",
                        ledger_path.display(),
                        s.line
                    ));
                }
                let file = require(&s.entries, "file", &ledger_path, s.line)?;
                let hash = require(&s.entries, "hash", &ledger_path, s.line)?;
                let context = s.entries.get("context").cloned().unwrap_or_default();
                m.ledger.push((file, hash, context));
            }
        }
        let frozen_path = root.join("analysis/wire_frozen.toml");
        if let Ok(src) = std::fs::read_to_string(&frozen_path) {
            for s in toml::parse(&src).map_err(|e| format!("{}: {e}", frozen_path.display()))? {
                if s.name != "frozen" || !s.is_array_entry {
                    return Err(format!(
                        "{}: line {}: expected only [[frozen]] entries",
                        frozen_path.display(),
                        s.line
                    ));
                }
                let file = require(&s.entries, "file", &frozen_path, s.line)?;
                let hash = require(&s.entries, "hash", &frozen_path, s.line)?;
                m.frozen.insert(file, hash);
            }
        }
        Ok(m)
    }
}

fn require(
    entries: &BTreeMap<String, String>,
    key: &str,
    path: &Path,
    line: usize,
) -> Result<String, String> {
    entries
        .get(key)
        .cloned()
        .ok_or_else(|| format!("{}: line {line}: entry missing `{key}`", path.display()))
}

/// The outcome of one analysis run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of source files scanned.
    pub files: usize,
    /// Every discovered unsafe site (for `--emit-ledger`).
    pub unsafe_sites: Vec<rules::unsafe_ledger::Site>,
    /// Every frozen-region digest (for `--emit-frozen`).
    pub frozen: Vec<rules::wire_freeze::Frozen>,
}

/// Runs every rule over pre-parsed files. Pure — no filesystem access
/// — so rule fixtures test exactly this entry point.
pub fn analyze_files(files: &[SourceFile], manifests: &Manifests, panic_scope: &[&str]) -> Report {
    let ledger_keys: HashSet<(String, String)> = manifests
        .ledger
        .iter()
        .map(|(f, h, _)| (f.clone(), h.clone()))
        .collect();
    let mut report = Report {
        files: files.len(),
        ..Report::default()
    };
    for file in files {
        let path = file.path_str();
        let (sites, mut diags) = rules::unsafe_ledger::check(file, &ledger_keys);
        report.unsafe_sites.extend(sites);
        report.diagnostics.append(&mut diags);
        // Integration tests and benches are whole-file test code (no
        // `#[cfg(test)]` wrapper); the comment-discipline rules don't
        // apply there. The unsafe ledger still does.
        let is_test_file = path.contains("/tests/") || path.contains("/benches/");
        if !is_test_file {
            report
                .diagnostics
                .append(&mut rules::atomic_ordering::check(file));
        }
        report
            .diagnostics
            .append(&mut rules::nonblocking::check(file));
        report
            .diagnostics
            .append(&mut rules::wire_freeze::check(file, &manifests.frozen));
        if let Some(f) = rules::wire_freeze::frozen(file) {
            report.frozen.push(f);
        }
        if panic_scope.contains(&path.as_str()) {
            report.diagnostics.append(&mut rules::no_panic::check(file));
        }
        for &line in &file.bad_suppressions {
            report.diagnostics.push(Diagnostic::new(
                "suppression-syntax",
                &path,
                line,
                "malformed analyze::allow — the form is \
                 `// analyze::allow(rule-name): <non-empty reason>`",
            ));
        }
        for (name, line) in &file.unclosed_regions {
            report.diagnostics.push(Diagnostic::new(
                if rules::rule_info(name).is_some() {
                    name.as_str()
                } else {
                    "region-marker"
                },
                &path,
                *line,
                format!("`// analyze: {name}` region is never closed with `end-{name}`"),
            ));
        }
    }
    let found: HashSet<(String, String)> = report
        .unsafe_sites
        .iter()
        .map(|s| (s.file.clone(), s.hash.clone()))
        .collect();
    report
        .diagnostics
        .extend(rules::unsafe_ledger::stale_entries(
            &manifests.ledger,
            &found,
        ));
    let frozen_files: Vec<String> = report.frozen.iter().map(|f| f.file.clone()).collect();
    report.diagnostics.extend(rules::wire_freeze::stale_entries(
        &manifests.frozen,
        &frozen_files,
    ));
    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    report
}

/// Collects every workspace `.rs` file under `<root>/src` and
/// `<root>/crates`, skipping `SKIP_DIRS`. Paths come back sorted and
/// root-relative.
pub fn collect_rs_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    for top in ["src", "crates"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut out)?;
        }
    }
    let mut rel: Vec<PathBuf> = out
        .into_iter()
        .filter_map(|p| p.strip_prefix(root).ok().map(Path::to_path_buf))
        .collect();
    rel.sort();
    Ok(rel)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walks the workspace at `root`, loads the manifests, and runs every
/// rule. This is what `--workspace` and CI execute.
pub fn analyze_workspace(root: &Path) -> Result<Report, String> {
    let manifests = Manifests::load(root)?;
    let mut files = Vec::new();
    for rel in collect_rs_files(root)? {
        let abs = root.join(&rel);
        let src =
            std::fs::read_to_string(&abs).map_err(|e| format!("read {}: {e}", abs.display()))?;
        files.push(SourceFile::parse(rel, &src));
    }
    Ok(analyze_files(&files, &manifests, PANIC_PATH_SCOPE))
}

/// Renders a ledger manifest for the given sites (sorted by file then
/// line), in the exact format [`Manifests::load`] reads back.
pub fn emit_ledger(sites: &[rules::unsafe_ledger::Site]) -> String {
    let mut sites: Vec<_> = sites.iter().collect();
    sites.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    let sections: Vec<toml::Section> = sites
        .iter()
        .map(|s| toml::Section {
            name: "unsafe".to_string(),
            is_array_entry: true,
            entries: BTreeMap::from([
                ("file".to_string(), s.file.clone()),
                ("line".to_string(), s.line.to_string()),
                ("hash".to_string(), s.hash.clone()),
                ("context".to_string(), s.context.clone()),
            ]),
            line: 0,
        })
        .collect();
    format!(
        "# Audited unsafe sites. Regenerate with:\n\
         #   cargo run -p privehd-analyze -- --emit-ledger > analysis/unsafe_ledger.toml\n\
         # Every entry is an audit receipt: review the site before refreshing its hash.\n\
         # `line` is informational; matching is by (file, hash).\n\n{}",
        toml::serialize(&sections)
    )
}

/// Renders the wire-freeze manifest for the given digests.
pub fn emit_frozen(frozen: &[rules::wire_freeze::Frozen]) -> String {
    let mut frozen: Vec<_> = frozen.iter().collect();
    frozen.sort_by(|a, b| a.file.cmp(&b.file));
    let sections: Vec<toml::Section> = frozen
        .iter()
        .map(|f| toml::Section {
            name: "frozen".to_string(),
            is_array_entry: true,
            entries: BTreeMap::from([
                ("file".to_string(), f.file.clone()),
                ("hash".to_string(), f.hash.clone()),
            ]),
            line: 0,
        })
        .collect();
    format!(
        "# Frozen wire-format digests. A hash change here must ship with a\n\
         # WIRE_VERSION bump. Regenerate with:\n\
         #   cargo run -p privehd-analyze -- --emit-frozen > analysis/wire_frozen.toml\n\n{}",
        toml::serialize(&sections)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emitted_ledger_round_trips_through_the_loader() {
        let site = rules::unsafe_ledger::Site {
            file: "crates/core/src/pool.rs".to_string(),
            line: 144,
            hash: "fnv64:0123456789abcdef".to_string(),
            context: "unsafe { transmute ( job ) }".to_string(),
        };
        let text = emit_ledger(std::slice::from_ref(&site));
        let sections = toml::parse(&text).unwrap();
        assert_eq!(sections.len(), 1);
        assert_eq!(sections[0].entries["file"], site.file);
        assert_eq!(sections[0].entries["hash"], site.hash);
    }

    #[test]
    fn analyze_files_sorts_and_merges_rule_output() {
        let clean = SourceFile::parse("crates/a.rs", "fn ok() {}\n");
        let dirty = SourceFile::parse(
            "crates/b.rs",
            "fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }\nfn g() { let x = unsafe { h() }; }\n",
        );
        let report = analyze_files(&[clean, dirty], &Manifests::default(), &[]);
        assert_eq!(report.files, 2);
        assert_eq!(report.unsafe_sites.len(), 1);
        let rules_hit: Vec<&str> = report.diagnostics.iter().map(|d| d.rule.as_str()).collect();
        assert!(rules_hit.contains(&"atomic-ordering"));
        assert!(rules_hit.contains(&"unsafe-ledger"));
        let mut sorted = report.diagnostics.clone();
        sorted.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
        assert_eq!(sorted, report.diagnostics);
    }
}
