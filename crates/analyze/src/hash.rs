//! FNV-1a 64-bit hashing over normalized token streams.
//!
//! The ledger and wire-freeze rules key on *content* hashes that are
//! stable under reformatting: whitespace and comments never reach the
//! hash because hashing happens over lexed token text, with a `\x1f`
//! separator so token boundaries can't alias (`a b` vs `ab`).

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64-bit hasher.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// Starts a hash at the FNV offset basis.
    pub fn new() -> Self {
        Self(FNV_OFFSET)
    }

    /// Folds `bytes` into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Final hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Hashes a sequence of token texts with a separator byte between
/// them, returning the `"fnv64:%016x"` form stored in ledger files.
pub fn hash_token_texts<'a>(texts: impl IntoIterator<Item = &'a str>) -> String {
    let mut h = Fnv64::new();
    for t in texts {
        h.write(t.as_bytes());
        h.write(&[0x1f]);
    }
    format!("fnv64:{:016x}", h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv_vector() {
        // FNV-1a 64 of empty input is the offset basis.
        assert_eq!(Fnv64::new().finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv64::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn token_boundaries_do_not_alias() {
        assert_ne!(hash_token_texts(["ab"]), hash_token_texts(["a", "b"]));
    }

    #[test]
    fn hash_is_stable_and_prefixed() {
        let h = hash_token_texts(["unsafe", "{", "}"]);
        assert!(h.starts_with("fnv64:"));
        assert_eq!(h, hash_token_texts(["unsafe", "{", "}"]));
    }
}
