//! A minimal Rust lexer: just enough token structure for the rules.
//!
//! The rules in this crate need to tell *code* apart from comments,
//! string literals and char literals — `// SAFETY:` must be a comment,
//! `"unwrap"` inside a diagnostic string must not trip the panic lint,
//! and `'a'` must not be confused with lifetime `'a`. They do **not**
//! need types, expressions, or a parse tree, so this is a flat token
//! scan, not a parser. `syn` is deliberately absent from the offline
//! `vendor/` set and nothing here misses it.
//!
//! Guarantees the rules rely on:
//!
//! * Every token and comment carries its 1-based source line.
//! * Comments (line, doc, nested block) are lexed as [`Comment`]s, in
//!   a separate list, never as code tokens.
//! * String literals (plain, raw `r#".."#`, byte `b".."`, raw-byte
//!   `br#".."#`, C `c".."`) and char literals are single
//!   [`TokKind::Literal`] tokens — their contents can never produce
//!   identifier or punctuation tokens, but the token text carries the
//!   exact source bytes so content hashes see literal edits.
//! * Lifetimes (`'a`) lex as [`TokKind::Lifetime`], not as char
//!   literals.

/// What a code token is. Comments are *not* tokens — see [`Comment`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`unsafe`, `unwrap`, `Ordering`, …),
    /// including raw identifiers (`r#type` lexes as `type`).
    Ident,
    /// A single punctuation character (`{`, `[`, `:`, `!`, …).
    Punct,
    /// A string, byte-string, char or numeric literal, lexed opaquely.
    Literal,
    /// A lifetime (`'a`), distinguished from a char literal.
    Lifetime,
}

/// One code token: kind, text, and the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// The token's source text (for [`TokKind::Ident`] and
    /// [`TokKind::Punct`], exactly the identifier / the one character).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: usize,
}

/// One comment: its text (markers included) and the lines it spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Full comment text including `//` / `/* */` markers.
    pub text: String,
    /// 1-based line of the comment's first character.
    pub line_start: usize,
    /// 1-based line of the comment's last character.
    pub line_end: usize,
}

/// The result of lexing one source file.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src` (one Rust file) into tokens and comments. Unknown bytes
/// are skipped: the lexer is forgiving by design — a file this lexer
/// mangles would fail `cargo build` long before it reaches analysis.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                c if c.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(self.pos),
                b'\'' => self.char_or_lifetime(self.pos),
                c if c == b'_' || c.is_ascii_alphabetic() => self.ident_or_prefixed(),
                c if c.is_ascii_digit() => self.number(),
                _ => {
                    self.push_tok(TokKind::Punct, (c as char).to_string(), self.line);
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn push_tok(&mut self, kind: TokKind, text: String, line: usize) {
        self.out.tokens.push(Tok { kind, text, line });
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        let line = self.line;
        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
            self.pos += 1;
        }
        self.out.comments.push(Comment {
            text: String::from_utf8_lossy(&self.src[start..self.pos]).into_owned(),
            line_start: line,
            line_end: line,
        });
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let line_start = self.line;
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            match (self.src[self.pos], self.peek(1)) {
                (b'/', Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (b'*', Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (b'\n', _) => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.out.comments.push(Comment {
            text: String::from_utf8_lossy(&self.src[start..self.pos]).into_owned(),
            line_start,
            line_end: self.line,
        });
    }

    /// A plain (escaped) string literal; the cursor is on the opening
    /// `"`, `start` is where the literal's text begins (a `b`/`c`
    /// prefix may precede the cursor).
    fn string(&mut self, start: usize) {
        let line = self.line;
        self.pos += 1;
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => self.pos += 2,
                b'"' => {
                    self.pos += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.push_literal(start, line);
    }

    /// A raw string; the cursor is on the hashes/quote after the
    /// `r`/`br`/`cr` prefix, `start` is the prefix's first byte.
    fn raw_string(&mut self, start: usize) {
        let line = self.line;
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        // Opening quote.
        self.pos += 1;
        'scan: while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'"' => {
                    let mut i = 0usize;
                    while i < hashes {
                        if self.peek(1 + i) != Some(b'#') {
                            self.pos += 1;
                            continue 'scan;
                        }
                        i += 1;
                    }
                    self.pos += 1 + hashes;
                    break;
                }
                _ => self.pos += 1,
            }
        }
        self.push_literal(start, line);
    }

    /// Pushes a [`TokKind::Literal`] carrying its exact source text —
    /// content hashes (unsafe ledger, wire freeze) must see literal
    /// edits, so literals are never lexed as placeholders.
    fn push_literal(&mut self, start: usize, line: usize) {
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push_tok(TokKind::Literal, text, line);
    }

    /// After a `'`: either a char literal (`'x'`, `'\n'`) or a
    /// lifetime (`'a`). The standard disambiguation: a backslash or a
    /// closing quote two characters on means char literal.
    fn char_or_lifetime(&mut self, start: usize) {
        let line = self.line;
        if self.peek(1) == Some(b'\\') {
            // Escaped char literal: skip to the closing quote.
            self.pos += 2; // ' and backslash
            self.pos += 1; // escaped char (covers \n, \', \\; \u{…} below)
            while self.pos < self.src.len() && self.src[self.pos] != b'\'' {
                self.pos += 1;
            }
            self.pos += 1;
            self.push_literal(start, line);
            return;
        }
        if self.peek(2) == Some(b'\'') {
            self.pos += 3;
            self.push_literal(start, line);
            return;
        }
        // Lifetime: consume the quote plus identifier characters.
        self.pos += 1;
        let start = self.pos;
        while self
            .peek(0)
            .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
        {
            self.pos += 1;
        }
        let name = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push_tok(TokKind::Lifetime, format!("'{name}"), line);
    }

    /// An identifier — or a prefixed literal (`r"…"`, `br#"…"#`,
    /// `b"…"`, `b'…'`, `c"…"`) or raw identifier (`r#name`).
    fn ident_or_prefixed(&mut self) {
        let line = self.line;
        let start = self.pos;
        while self
            .peek(0)
            .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
        {
            self.pos += 1;
        }
        let word = &self.src[start..self.pos];
        let next = self.peek(0);
        let is_raw_str_prefix = matches!(word, b"r" | b"br" | b"cr");
        let is_str_prefix = matches!(word, b"b" | b"c");
        match next {
            Some(b'"') if is_raw_str_prefix => return self.raw_string(start),
            Some(b'#') if is_raw_str_prefix && self.raw_hashes_then_quote() => {
                return self.raw_string(start);
            }
            Some(b'#') if word == b"r" => {
                // Raw identifier r#name: lex the name itself.
                self.pos += 1;
                return self.ident_or_prefixed();
            }
            Some(b'"') if is_str_prefix => return self.string(start),
            Some(b'\'') if word == b"b" => return self.char_or_lifetime_byte(start),
            _ => {}
        }
        self.push_tok(
            TokKind::Ident,
            String::from_utf8_lossy(word).into_owned(),
            line,
        );
    }

    /// True when the bytes at the cursor are `#…#"` — the hash run of a
    /// raw string opener (distinguishes `r#"…"#` from raw ident
    /// `r#name`).
    fn raw_hashes_then_quote(&self) -> bool {
        let mut i = 0usize;
        while self.peek(i) == Some(b'#') {
            i += 1;
        }
        i > 0 && self.peek(i) == Some(b'"')
    }

    /// A byte char literal `b'…'` (cursor on the `'`).
    fn char_or_lifetime_byte(&mut self, start: usize) {
        // Byte char literals are always closed; reuse the char lexer
        // (a byte "lifetime" cannot occur).
        self.char_or_lifetime(start);
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.pos;
        // Digits plus alphanumeric suffix/base characters and `_`; the
        // rules never inspect numeric values, so `1.5` lexing as two
        // literals around a `.` punct is fine.
        while self
            .peek(0)
            .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
        {
            self.pos += 1;
        }
        self.push_literal(start, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_are_not_tokens() {
        let l = lex("let x = 1; // unwrap() here is commentary\n/* panic! */ let y;");
        assert!(idents("// unwrap()").is_empty());
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("unwrap"));
        assert_eq!(l.comments[0].line_start, 1);
        assert_eq!(l.comments[1].line_start, 2);
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Ident).count(),
            4 // let x let y
        );
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let l = lex("/* outer /* inner */ still outer */ fn f() {}");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(idents("/* a /* b */ c */ fn f() {}"), vec!["fn", "f"]);
        assert!(l.comments[0].text.ends_with("outer */"));
    }

    #[test]
    fn strings_swallow_code_like_content() {
        assert_eq!(
            idents(r#"let m = "unsafe { unwrap() }";"#),
            vec!["let", "m"]
        );
        assert_eq!(
            idents(r###"let m = r#"panic! // not a comment"# ;"###),
            vec!["let", "m"]
        );
        assert_eq!(idents(r#"let b = b"unsafe";"#), vec!["let", "b"]);
        // A // inside a string is not a comment.
        let l = lex(r#"let url = "https://example.com";"#);
        assert!(l.comments.is_empty());
    }

    #[test]
    fn raw_strings_with_hashes_and_quotes() {
        let src = r####"let s = r##"quote " and "# inside"## ; let t = 1;"####;
        assert_eq!(idents(src), vec!["let", "s", "let", "t"]);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let l = lex(r"fn f<'a>(x: &'a str) { let c = 'x'; let n = '\n'; }");
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.text == "'a"));
        let chars: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal && t.text.starts_with('\''))
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, vec!["'x'", r"'\n'"]);
    }

    #[test]
    fn raw_identifiers_lex_as_their_name() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }

    #[test]
    fn lines_are_tracked_across_multiline_constructs() {
        let src = "let a = \"x\ny\";\n/* c\nc */\nlet b = 2;";
        let l = lex(src);
        let b = l.tokens.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 5);
        assert_eq!(l.comments[0].line_start, 3);
        assert_eq!(l.comments[0].line_end, 4);
    }

    #[test]
    fn punctuation_carries_its_character() {
        let l = lex("a[0].b(!c);");
        let puncts: String = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(puncts, "[].(!);");
    }
}
