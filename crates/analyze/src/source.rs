//! One analyzed source file: tokens, comments, and the derived
//! structure every rule consumes — test regions, suppression comments,
//! and `// analyze:` region markers.

use std::ops::Range;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Comment, Lexed, Tok, TokKind};

/// A suppression comment: `// analyze::allow(rule-name): reason`.
///
/// The reason is mandatory — an allow without one is itself reported
/// (see [`SourceFile::bad_suppressions`]). A suppression covers
/// findings from its anchor line through the two lines below it,
/// where the anchor is the *last* line of the comment block containing
/// the allow — so a reason wrapped over several comment lines still
/// covers the code directly beneath (or trailing on the same line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// The rule name inside the parentheses.
    pub rule: String,
    /// The justification after the colon (trimmed; non-empty).
    pub reason: String,
    /// 1-based anchor line: the last line of the comment block the
    /// allow belongs to (= its own line for a trailing comment).
    pub line: usize,
}

/// A `// analyze: <name> …` region, delimited by a begin marker and an
/// `end-<name>` marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarkedRegion {
    /// Region name (e.g. `nonblocking-region`, `wire-freeze`).
    pub name: String,
    /// Lines covered, inclusive, from the line after the begin marker
    /// through the line before the end marker.
    pub lines: Range<usize>,
}

/// A lexed file plus the line-oriented structure rules query.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the analysis root (stable across machines —
    /// diagnostics and ledger keys use this).
    pub rel_path: PathBuf,
    /// Code tokens in source order.
    pub tokens: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
    /// `#[cfg(test)]`-gated line ranges (inclusive), brace-matched.
    pub test_regions: Vec<Range<usize>>,
    /// Parsed `analyze::allow` suppressions.
    pub suppressions: Vec<Suppression>,
    /// Malformed suppressions (no reason after the colon, or no colon).
    pub bad_suppressions: Vec<usize>,
    /// Parsed `analyze:` begin/end regions, in order of their begin
    /// markers.
    pub regions: Vec<MarkedRegion>,
    /// Begin markers that never found their matching end marker.
    pub unclosed_regions: Vec<(String, usize)>,
    /// Comments coalesced into contiguous blocks (a run of `//` lines
    /// is one block), for proximity queries: a `// SAFETY:` line five
    /// lines up still "touches" code its continuation lines reach.
    comment_blocks: Vec<Comment>,
}

impl SourceFile {
    /// Lexes `src` and derives the rule-facing structure.
    pub fn parse(rel_path: impl Into<PathBuf>, src: &str) -> Self {
        let Lexed { tokens, comments } = lex(src);
        let test_regions = find_test_regions(&tokens);
        let (mut suppressions, bad_suppressions) = find_suppressions(&comments);
        let (regions, unclosed_regions) = find_regions(&comments);
        let comment_blocks = coalesce(&comments);
        // Re-anchor each suppression at the end of its comment block so
        // a wrapped reason doesn't push the covered code out of range.
        for sup in &mut suppressions {
            if let Some(block) = comment_blocks
                .iter()
                .find(|b| (b.line_start..=b.line_end).contains(&sup.line))
            {
                sup.line = block.line_end;
            }
        }
        Self {
            rel_path: rel_path.into(),
            tokens,
            comments,
            test_regions,
            suppressions,
            bad_suppressions,
            regions,
            unclosed_regions,
            comment_blocks,
        }
    }

    /// The relative path as a `/`-separated string (ledger key form).
    pub fn path_str(&self) -> String {
        path_key(&self.rel_path)
    }

    /// True when `line` falls inside a `#[cfg(test)]` region.
    pub fn in_test_region(&self, line: usize) -> bool {
        self.test_regions.iter().any(|r| r.contains(&line))
    }

    /// True when a well-formed `analyze::allow(rule)` suppression
    /// covers `line` (the end of the suppression's comment block, or
    /// the two lines below it).
    pub fn suppressed(&self, rule: &str, line: usize) -> bool {
        self.suppressions
            .iter()
            .any(|s| s.rule == rule && (s.line..=s.line + 2).contains(&line))
    }

    /// All comment *blocks* any part of which lies in `[first, last]`
    /// (contiguous `//` runs count as one block, so a block's first
    /// line is reachable through its last).
    pub fn comments_touching(&self, first: usize, last: usize) -> impl Iterator<Item = &Comment> {
        self.comment_blocks
            .iter()
            .filter(move |c| c.line_start <= last && c.line_end >= first)
    }

    /// Index of the token matching the opening delimiter at
    /// `tokens[open]` (`{`, `(` or `[`), or `None` when unbalanced.
    pub fn matching_close(&self, open: usize) -> Option<usize> {
        let (open_ch, close_ch) = match self.tokens[open].text.as_str() {
            "{" => ("{", "}"),
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            _ => return None,
        };
        let mut depth = 0usize;
        for (i, t) in self.tokens.iter().enumerate().skip(open) {
            if t.kind == TokKind::Punct {
                if t.text == open_ch {
                    depth += 1;
                } else if t.text == close_ch {
                    depth -= 1;
                    if depth == 0 {
                        return Some(i);
                    }
                }
            }
        }
        None
    }
}

/// Normalizes a relative path into the `/`-separated key form used by
/// diagnostics and the ledger.
pub fn path_key(p: &Path) -> String {
    p.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Finds `#[cfg(test)]` attributes and brace-matches the item they
/// gate (a `mod tests { … }` block, or a single `fn`), returning the
/// covered line ranges.
fn find_test_regions(tokens: &[Tok]) -> Vec<Range<usize>> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i + 6 < tokens.len() {
        let is_cfg_test = tokens[i].text == "#"
            && tokens[i + 1].text == "["
            && tokens[i + 2].text == "cfg"
            && tokens[i + 3].text == "("
            && tokens[i + 4].text == "test"
            && tokens[i + 5].text == ")"
            && tokens[i + 6].text == "]";
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start_line = tokens[i].line;
        // Find the gated item's opening brace, skipping further
        // attributes and the item header. A `;`-terminated item
        // (e.g. `#[cfg(test)] mod tests;`) gates a whole other file.
        let mut j = i + 7;
        let mut open = None;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "{" => {
                    open = Some(j);
                    break;
                }
                ";" => break,
                _ => j += 1,
            }
        }
        if let Some(open) = open {
            let mut depth = 0usize;
            let mut end = None;
            for (k, t) in tokens.iter().enumerate().skip(open) {
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                end = Some(k);
                                break;
                            }
                        }
                        _ => {}
                    }
                }
            }
            let end_line = end.map_or(usize::MAX, |k| tokens[k].line);
            regions.push(start_line..end_line.saturating_add(1));
            i = end.unwrap_or(tokens.len());
        } else {
            i = j;
        }
    }
    regions
}

/// Merges comments on contiguous lines into blocks (text joined with
/// newlines, span covering the run).
fn coalesce(comments: &[Comment]) -> Vec<Comment> {
    let mut blocks: Vec<Comment> = Vec::new();
    for c in comments {
        match blocks.last_mut() {
            Some(last) if c.line_start <= last.line_end + 1 => {
                last.text.push('\n');
                last.text.push_str(&c.text);
                last.line_end = last.line_end.max(c.line_end);
            }
            _ => blocks.push(c.clone()),
        }
    }
    blocks
}

/// Strips comment markers (`//`, `///`, `//!`, `/*`, leading `*`) and
/// whitespace, exposing the comment's leading text. Marker and
/// suppression syntax must start there — prose *mentioning* the syntax
/// mid-comment (as this crate's own docs do) is not a directive.
fn comment_body(text: &str) -> &str {
    text.trim_start_matches(['/', '*', '!']).trim_start()
}

/// Parses `analyze::allow(rule): reason` suppressions out of the
/// comment list. Returns `(well_formed, lines_of_malformed)`.
fn find_suppressions(comments: &[Comment]) -> (Vec<Suppression>, Vec<usize>) {
    let mut ok = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        let Some(rest) = comment_body(&c.text).strip_prefix("analyze::allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad.push(c.line_start);
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let after = rest[close + 1..].trim_start();
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if rule.is_empty() || reason.is_empty() {
            bad.push(c.line_start);
            continue;
        }
        ok.push(Suppression {
            rule,
            reason: reason.to_string(),
            line: c.line_start,
        });
    }
    (ok, bad)
}

/// Parses `// analyze: <name>` / `// analyze: end-<name>` marker pairs
/// into line regions. Returns `(closed_regions, unclosed_begin_markers)`.
fn find_regions(comments: &[Comment]) -> (Vec<MarkedRegion>, Vec<(String, usize)>) {
    let mut regions = Vec::new();
    let mut open: Vec<(String, usize)> = Vec::new();
    for c in comments {
        let Some(marker) = comment_body(&c.text).strip_prefix("analyze:") else {
            continue;
        };
        let marker = marker.trim();
        // Not a region marker if it's the allow syntax (analyze::allow
        // contains "analyze:" followed by ":allow(…").
        if marker.starts_with(':') || marker.is_empty() {
            continue;
        }
        let name = marker.split_whitespace().next().unwrap_or("");
        // Region names are kebab-case; anything else is prose that
        // happens to start with "analyze:".
        if !name
            .chars()
            .all(|ch| ch.is_ascii_lowercase() || ch.is_ascii_digit() || ch == '-')
        {
            continue;
        }
        if let Some(opened) = name.strip_prefix("end-") {
            if let Some(pos) = open.iter().rposition(|(n, _)| n == opened) {
                let (name, begin) = open.remove(pos);
                regions.push(MarkedRegion {
                    name,
                    lines: begin + 1..c.line_start,
                });
            }
            // An end without a begin is ignored: harmless, and flagging
            // it would make moving code around needlessly noisy.
        } else {
            open.push((name.to_string(), c.line_start));
        }
    }
    (regions, open)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_region_covers_the_mod_block() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.test_regions.len(), 1);
        assert!(!f.in_test_region(1));
        assert!(f.in_test_region(2));
        assert!(f.in_test_region(4));
        assert!(f.in_test_region(5));
        assert!(!f.in_test_region(6));
    }

    #[test]
    fn cfg_test_with_extra_attributes_still_matches() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn x() { { } } }\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.test_regions.len(), 1);
        assert!(f.in_test_region(3));
    }

    #[test]
    fn suppressions_parse_rule_and_reason() {
        let src = "// analyze::allow(no-panic-path): length checked above\nlet x = 1;\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.suppressions.len(), 1);
        assert_eq!(f.suppressions[0].rule, "no-panic-path");
        assert_eq!(f.suppressions[0].reason, "length checked above");
        assert!(f.suppressed("no-panic-path", 2));
        assert!(!f.suppressed("no-panic-path", 4));
        assert!(!f.suppressed("atomic-ordering", 2));
    }

    #[test]
    fn suppression_without_reason_is_malformed() {
        let f = SourceFile::parse(
            "x.rs",
            "// analyze::allow(no-panic-path)\nlet x = 1;\n// analyze::allow(no-panic-path):   \n",
        );
        assert!(f.suppressions.is_empty());
        assert_eq!(f.bad_suppressions, vec![1, 3]);
    }

    #[test]
    fn regions_pair_begin_and_end_markers() {
        let src = "\n// analyze: nonblocking-region\nfn a() {}\nfn b() {}\n// analyze: end-nonblocking-region\nfn c() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.regions.len(), 1);
        assert_eq!(f.regions[0].name, "nonblocking-region");
        assert_eq!(f.regions[0].lines, 3..5);
        assert!(f.unclosed_regions.is_empty());
    }

    #[test]
    fn prose_mentioning_the_syntax_is_not_a_directive() {
        let src = "\
//! Doc prose about `// analyze: <name>` region markers.
/// True when a well-formed `analyze::allow(rule)` suppression exists.
// The marker is written as analyze: something-here in the docs? No:
// this line starts with \"The marker\", so it is prose too.
fn f() {}
";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.suppressions.is_empty());
        assert!(f.bad_suppressions.is_empty());
        assert!(f.regions.is_empty());
        assert!(f.unclosed_regions.is_empty());
    }

    #[test]
    fn unclosed_region_is_reported() {
        let f = SourceFile::parse("x.rs", "// analyze: wire-freeze\nconst A: u8 = 1;\n");
        assert!(f.regions.is_empty());
        assert_eq!(f.unclosed_regions, vec![("wire-freeze".to_string(), 1)]);
    }

    #[test]
    fn matching_close_balances_nested_delimiters() {
        let f = SourceFile::parse("x.rs", "fn a() { if x { y(); } }");
        let open = f.tokens.iter().position(|t| t.text == "{").unwrap();
        let close = f.matching_close(open).unwrap();
        assert_eq!(f.tokens[close].text, "}");
        assert_eq!(close, f.tokens.len() - 1);
    }
}
