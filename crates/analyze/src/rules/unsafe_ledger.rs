//! `unsafe-ledger`: every `unsafe` site carries a `// SAFETY:` comment
//! and matches an audited entry in `analysis/unsafe_ledger.toml`.

use std::collections::HashSet;

use crate::diag::Diagnostic;
use crate::hash::hash_token_texts;
use crate::lexer::TokKind;
use crate::source::SourceFile;

/// Rule name.
pub const NAME: &str = "unsafe-ledger";

/// How many lines above an `unsafe` token a `SAFETY` comment may end.
const SAFETY_WINDOW: usize = 5;

/// One discovered `unsafe` site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    /// `/`-separated path relative to the analysis root.
    pub file: String,
    /// 1-based line of the `unsafe` token.
    pub line: usize,
    /// `fnv64:…` hash of the site's token stream.
    pub hash: String,
    /// First few tokens after `unsafe`, for human context in the ledger.
    pub context: String,
}

/// Finds every top-level `unsafe` site in `file`.
///
/// A site's extent runs from the `unsafe` token to the matching `}` of
/// the first `{` after it (or a `;` for brace-less declarations).
/// Inner `unsafe {}` blocks inside an outer unsafe fn are part of the
/// outer site, not separate entries — the outer hash already pins
/// their content.
pub fn sites(file: &SourceFile) -> Vec<Site> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "unsafe") {
            i += 1;
            continue;
        }
        let line = toks[i].line;
        // Walk to the extent terminator: the close of the first brace
        // block, or a `;` (e.g. an unsafe fn declared in a trait).
        let mut j = i + 1;
        let mut close = toks.len() - 1;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "{" => {
                    close = file.matching_close(j).unwrap_or(toks.len() - 1);
                    break;
                }
                ";" => {
                    close = j;
                    break;
                }
                _ => j += 1,
            }
        }
        let hash = hash_token_texts(toks[i..=close].iter().map(|t| t.text.as_str()));
        let context = toks[i..toks.len().min(i + 7)]
            .iter()
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>()
            .join(" ");
        out.push(Site {
            file: file.path_str(),
            line,
            hash,
            context,
        });
        i = close + 1;
    }
    out
}

/// Checks `file`'s unsafe sites against the ledger key set
/// `(file, hash)`, returning diagnostics and the sites found.
pub fn check(
    file: &SourceFile,
    ledger: &HashSet<(String, String)>,
) -> (Vec<Site>, Vec<Diagnostic>) {
    let found = sites(file);
    let mut diags = Vec::new();
    for site in &found {
        // `// SAFETY:` for blocks, `# Safety` doc sections for unsafe
        // fns — both count.
        let has_safety = file
            .comments_touching(site.line.saturating_sub(SAFETY_WINDOW), site.line)
            .any(|c| c.text.to_ascii_lowercase().contains("safety"));
        if !has_safety {
            diags.push(Diagnostic::new(
                NAME,
                &site.file,
                site.line,
                format!(
                    "unsafe site `{}` has no `// SAFETY:` comment within {SAFETY_WINDOW} lines",
                    site.context
                ),
            ));
        }
        if !ledger.contains(&(site.file.clone(), site.hash.clone())) {
            diags.push(Diagnostic::new(
                NAME,
                &site.file,
                site.line,
                format!(
                    "unsafe site is not in analysis/unsafe_ledger.toml (new or edited; hash {}); \
                     re-audit and regenerate with `--emit-ledger`",
                    site.hash
                ),
            ));
        }
    }
    (found, diags)
}

/// Flags ledger entries whose site no longer exists anywhere in the
/// scanned tree (stale audits must be deleted, not hoarded).
pub fn stale_entries(
    ledger: &[(String, String, String)],
    found: &HashSet<(String, String)>,
) -> Vec<Diagnostic> {
    ledger
        .iter()
        .filter(|(file, hash, _)| !found.contains(&(file.clone(), hash.clone())))
        .map(|(file, hash, context)| {
            Diagnostic::new(
                NAME,
                "analysis/unsafe_ledger.toml",
                0,
                format!(
                    "stale ledger entry for {file} (hash {hash}, `{context}`): \
                     the unsafe site was removed or edited; delete or regenerate the entry"
                ),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("crates/core/src/x.rs", src)
    }

    #[test]
    fn block_impl_and_fn_sites_are_found_with_extents() {
        let src = "\
// SAFETY: fine
unsafe impl Send for X {}
fn f() {
    // SAFETY: fine
    let y = unsafe { g() };
}
// SAFETY: fine
unsafe fn h() { unsafe { inner() } }
";
        let f = parse(src);
        let s = sites(&f);
        assert_eq!(s.len(), 3, "inner unsafe must fold into the unsafe fn site");
        assert_eq!(s[0].line, 2);
        assert_eq!(s[1].line, 5);
        assert_eq!(s[2].line, 8);
    }

    #[test]
    fn missing_safety_comment_is_reported() {
        let f = parse("fn f() {\n    let y = unsafe { g() };\n}\n");
        let (found, diags) = check(&f, &HashSet::new());
        assert_eq!(found.len(), 1);
        // Two findings: no SAFETY, and not in the (empty) ledger.
        assert_eq!(diags.len(), 2);
        assert!(diags[0].message.contains("SAFETY"));
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn ledgered_site_with_safety_is_clean() {
        let f = parse("// SAFETY: g is sound here\nlet y = unsafe { g() };\n");
        let found = sites(&f);
        let ledger: HashSet<_> = found
            .iter()
            .map(|s| (s.file.clone(), s.hash.clone()))
            .collect();
        let (_, diags) = check(&f, &ledger);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn edited_site_changes_hash_and_fails_the_ledger() {
        let original = parse("// SAFETY: ok\nlet y = unsafe { g() };\n");
        let ledger: HashSet<_> = sites(&original)
            .iter()
            .map(|s| (s.file.clone(), s.hash.clone()))
            .collect();
        let edited = parse("// SAFETY: ok\nlet y = unsafe { g_v2() };\n");
        let (_, diags) = check(&edited, &ledger);
        assert_eq!(diags.len(), 1);
        assert!(diags[0]
            .message
            .contains("not in analysis/unsafe_ledger.toml"));
    }

    #[test]
    fn reformatting_does_not_change_the_hash() {
        let a = sites(&parse("// SAFETY: ok\nlet y = unsafe { g( 1 ) };\n"));
        let b = sites(&parse(
            "// SAFETY: ok\nlet y = unsafe {\n    // now with a comment\n    g(1)\n};\n",
        ));
        assert_eq!(a[0].hash, b[0].hash);
    }

    #[test]
    fn stale_entries_are_flagged() {
        let ledger = vec![(
            "crates/core/src/gone.rs".to_string(),
            "fnv64:dead".to_string(),
            "unsafe { old }".to_string(),
        )];
        let diags = stale_entries(&ledger, &HashSet::new());
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("stale ledger entry"));
    }
}
