//! `no-panic-path`: the serve request path must answer typed faults,
//! never die. Scoped to the files listed in
//! [`crate::PANIC_PATH_SCOPE`].

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::source::SourceFile;

/// Rule name.
pub const NAME: &str = "no-panic-path";

/// Macros that panic by construction.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Checks one in-scope file for panic-capable constructs outside
/// test regions and suppressions.
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    let toks = &file.tokens;
    let mut diags = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if file.in_test_region(t.line) {
            continue;
        }
        let next = toks.get(i + 1).map(|n| n.text.as_str());
        let prev = i.checked_sub(1).map(|p| &toks[p]);

        let finding = if t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && prev.is_some_and(|p| p.text == ".")
            && next == Some("(")
        {
            Some(format!(
                "`.{}()` on the serve path can panic; return a typed fault instead",
                t.text
            ))
        } else if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && next == Some("!")
            // A `:` before the name means a path segment like
            // `std::panic::…` (e.g. `panic::catch_unwind`), not the
            // macro (`::` lexes as two `:` puncts).
            && prev.is_none_or(|p| p.text != ":")
        {
            Some(format!(
                "`{}!` on the serve path kills the thread; queue a fault frame instead",
                t.text
            ))
        } else if t.text == "["
            && prev.is_some_and(|p| p.kind == TokKind::Ident || p.text == ")" || p.text == "]")
        {
            Some(
                "slice index can panic on the serve path; use `.get(..)` or prove the bound \
                 and add `analyze::allow(no-panic-path): <why>`"
                    .to_string(),
            )
        } else {
            None
        };

        if let Some(message) = finding {
            if !file.suppressed(NAME, t.line) {
                diags.push(Diagnostic::new(NAME, file.path_str(), t.line, message));
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("crates/serve/src/engine.rs", src)
    }

    #[test]
    fn unwrap_expect_and_panic_macros_are_flagged() {
        let src = "fn f() {\n    x.unwrap();\n    y.expect(\"m\");\n    panic!(\"boom\");\n    unreachable!();\n}\n";
        let diags = check(&parse(src));
        assert_eq!(diags.len(), 4);
        assert_eq!(diags[0].line, 2);
        assert_eq!(diags[1].line, 3);
        assert_eq!(diags[2].line, 4);
        assert_eq!(diags[3].line, 5);
        assert!(diags.iter().all(|d| d.rule == NAME));
    }

    #[test]
    fn slice_indexing_is_flagged_but_types_and_attrs_are_not() {
        let src = "#[derive(Debug)]\nstruct S { a: [u8; 4] }\nfn f(b: &[u8]) -> u8 {\n    let x = [1, 2];\n    b[0]\n}\n";
        let diags = check(&parse(src));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 5);
    }

    #[test]
    fn test_regions_are_exempt() {
        let src =
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); v[0]; panic!(); }\n}\n";
        assert!(check(&parse(src)).is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses_without_reason_does_not() {
        let with = "fn f(b: &[u8; 2]) {\n    // analyze::allow(no-panic-path): array length is 2 by type\n    let x = b[0];\n}\n";
        assert!(check(&parse(with)).is_empty());
        let without =
            "fn f(b: &[u8; 2]) {\n    // analyze::allow(no-panic-path)\n    let x = b[0];\n}\n";
        assert_eq!(check(&parse(without)).len(), 1);
    }

    #[test]
    fn trailing_same_line_allow_suppresses() {
        let src = "fn f(v: &[u8]) {\n    let x = v[0]; // analyze::allow(no-panic-path): caller checked non-empty\n}\n";
        assert!(check(&parse(src)).is_empty());
    }

    #[test]
    fn panic_path_segments_are_not_macro_calls() {
        let src = "fn f() {\n    let h = std::panic::take_hook();\n}\n";
        assert!(check(&parse(src)).is_empty());
    }
}
