//! `wire-freeze`: the frozen wire-format constants must hash-match
//! `analysis/wire_frozen.toml`, so format drift is an explicit,
//! reviewed act.

use std::collections::BTreeMap;

use crate::diag::Diagnostic;
use crate::hash::hash_token_texts;
use crate::source::SourceFile;

/// Rule name (also the region marker name).
pub const NAME: &str = "wire-freeze";

/// One file's frozen-region digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frozen {
    /// `/`-separated path relative to the analysis root.
    pub file: String,
    /// Line of the first frozen region's begin marker content.
    pub line: usize,
    /// Combined hash of all `wire-freeze` region tokens in file order.
    pub hash: String,
}

/// Computes the frozen digest for `file`, if it has any `wire-freeze`
/// regions.
pub fn frozen(file: &SourceFile) -> Option<Frozen> {
    let spans: Vec<_> = file
        .regions
        .iter()
        .filter(|r| r.name == NAME)
        .map(|r| r.lines.clone())
        .collect();
    if spans.is_empty() {
        return None;
    }
    let texts: Vec<&str> = file
        .tokens
        .iter()
        .filter(|t| spans.iter().any(|s| s.contains(&t.line)))
        .map(|t| t.text.as_str())
        .collect();
    Some(Frozen {
        file: file.path_str(),
        line: spans.iter().map(|s| s.start).min().unwrap_or(1),
        hash: hash_token_texts(texts),
    })
}

/// Checks `file`'s frozen digest against the manifest (`file` → hash).
pub fn check(file: &SourceFile, manifest: &BTreeMap<String, String>) -> Vec<Diagnostic> {
    let Some(f) = frozen(file) else {
        return Vec::new();
    };
    match manifest.get(&f.file) {
        None => vec![Diagnostic::new(
            NAME,
            &f.file,
            f.line,
            "wire-freeze region is not registered in analysis/wire_frozen.toml; \
             regenerate with `--emit-frozen`"
                .to_string(),
        )],
        Some(expected) if *expected != f.hash => vec![Diagnostic::new(
            NAME,
            &f.file,
            f.line,
            format!(
                "frozen wire constants drifted (manifest {expected}, tree {}); wire-format \
                 changes require a WIRE_VERSION bump plus `--emit-frozen` in the same diff",
                f.hash
            ),
        )],
        Some(_) => Vec::new(),
    }
}

/// Flags manifest entries whose file no longer has a frozen region.
pub fn stale_entries(
    manifest: &BTreeMap<String, String>,
    seen_files: &[String],
) -> Vec<Diagnostic> {
    manifest
        .iter()
        .filter(|(file, _)| !seen_files.contains(file))
        .map(|(file, _)| {
            Diagnostic::new(
                NAME,
                "analysis/wire_frozen.toml",
                0,
                format!(
                    "stale manifest entry for {file}: no `// analyze: wire-freeze` region found \
                     there; the markers were removed without updating the manifest"
                ),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "\
// analyze: wire-freeze
pub const MAGIC: [u8; 4] = *b\"PVHD\";
pub const WIRE_VERSION: u8 = 1;
// analyze: end-wire-freeze
pub const UNFROZEN: u8 = 9;
";

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("crates/serve/src/wire/frame.rs", src)
    }

    #[test]
    fn matching_hash_is_clean() {
        let file = parse(SRC);
        let f = frozen(&file).unwrap();
        let manifest = BTreeMap::from([(f.file.clone(), f.hash.clone())]);
        assert!(check(&file, &manifest).is_empty());
    }

    #[test]
    fn drifted_constant_is_flagged_at_the_region() {
        let file = parse(SRC);
        let f = frozen(&file).unwrap();
        let manifest = BTreeMap::from([(f.file.clone(), f.hash)]);
        let drifted = parse(&SRC.replace("u8 = 1", "u8 = 2"));
        let diags = check(&drifted, &manifest);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 2);
        assert!(diags[0].message.contains("drifted"));
    }

    #[test]
    fn changes_outside_the_region_do_not_drift() {
        let file = parse(SRC);
        let f = frozen(&file).unwrap();
        let manifest = BTreeMap::from([(f.file.clone(), f.hash)]);
        let outside = parse(&SRC.replace("UNFROZEN: u8 = 9", "UNFROZEN: u8 = 10"));
        assert!(check(&outside, &manifest).is_empty());
    }

    #[test]
    fn unregistered_region_and_stale_entry_are_flagged() {
        let file = parse(SRC);
        assert_eq!(check(&file, &BTreeMap::new()).len(), 1);
        let manifest = BTreeMap::from([("crates/old.rs".to_string(), "fnv64:00".to_string())]);
        let stale = stale_entries(&manifest, &[]);
        assert_eq!(stale.len(), 1);
        assert!(stale[0].message.contains("stale"));
    }
}
