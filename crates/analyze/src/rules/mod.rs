//! The rule catalog: one module per named rule, plus the metadata
//! `--explain` and `--list-rules` render.

pub mod atomic_ordering;
pub mod no_panic;
pub mod nonblocking;
pub mod unsafe_ledger;
pub mod wire_freeze;

/// Static metadata for one rule.
pub struct RuleInfo {
    /// Rule name as it appears in diagnostics and `analyze::allow`.
    pub name: &'static str,
    /// One-line summary for `--list-rules`.
    pub brief: &'static str,
    /// Full rationale + fix pattern for `--explain`.
    pub explain: &'static str,
}

/// Every rule the engine runs, in diagnostic-name order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: atomic_ordering::NAME,
        brief: "atomic Ordering choices outside tests need a justification comment within 3 lines",
        explain: "\
Every `Ordering::{Relaxed, Acquire, Release, AcqRel}` in non-test code
must have a comment within the 3 lines above it (or on the same line)
explaining why that ordering is sufficient. `SeqCst` is exempt: it is
the conservative default and needs no defense.

Why: the telemetry seqlock and the worker pool are correct only
because each relaxed/acquire/release pairing was reasoned about once.
An ordering with no written rationale is indistinguishable from an
ordering someone guessed.

Fix: write the invariant the ordering relies on, e.g.
    // Relaxed: the counter is monotonic and read only for reporting;
    // no other memory is published through it.
    self.dropped.fetch_add(1, Ordering::Relaxed);
or, where a comment genuinely cannot help, suppress with
    // analyze::allow(atomic-ordering): <why>",
    },
    RuleInfo {
        name: no_panic::NAME,
        brief: "no unwrap/expect/panic!/unreachable!/slice-index on the serve request path",
        explain: "\
In `crates/serve/src/wire/server.rs`, `engine.rs`, and
`wire/frame.rs`, non-test code must not call `.unwrap()`, `.expect()`,
`panic!`, `unreachable!`, `todo!`, `unimplemented!`, or index a slice
with `[...]`. A panic on the wire path kills the poll thread or a
worker; the contract is that the server answers a typed fault frame
and stays up.

Fix: return/queue a typed error (`ServeError`, `WireFault`) instead.
For sites that are provably infallible (e.g. `try_into()` on a slice
whose length was just checked), suppress with a required reason:
    // analyze::allow(no-panic-path): slice is exactly 4 bytes, checked above
    let b: [u8; 4] = chunk.try_into().expect(\"len 4\");
A suppression with no reason after the colon is itself an error.",
    },
    RuleInfo {
        name: nonblocking::NAME,
        brief: "no blocking calls inside `// analyze: nonblocking-region` spans",
        explain: "\
Code between `// analyze: nonblocking-region` and
`// analyze: end-nonblocking-region` runs on the wire server poll
thread, which multiplexes every connection. A single blocking call
(`.lock()`, `.recv()`, `.join()`, `sleep`, `wait`, `read_to_end`,
`read_exact`, ...) stalls all of them.

Fix: use the nonblocking variants (`try_lock`, `try_recv`), move the
work to the worker pool, or — if the call is provably nonblocking in
context — suppress with
    // analyze::allow(nonblocking-region): <why this cannot block>",
    },
    RuleInfo {
        name: unsafe_ledger::NAME,
        brief: "every unsafe site needs a SAFETY comment and a matching audit-ledger entry",
        explain: "\
Each `unsafe` block, fn, or impl must (a) have a `// SAFETY:` comment
within the 5 lines above it, and (b) match an entry in
`analysis/unsafe_ledger.toml` keyed by (file, hash of the normalized
token stream). Editing an unsafe site changes its hash, so the build
fails until someone re-audits and updates the ledger — unsafe cannot
drift silently.

Fix: write the SAFETY argument, then regenerate the entry:
    cargo run -p privehd-analyze -- --emit-ledger > analysis/unsafe_ledger.toml
and review the diff: the changed hash is the re-audit receipt. Ledger
entries whose site no longer exists are reported as stale and must be
deleted.",
    },
    RuleInfo {
        name: wire_freeze::NAME,
        brief: "frozen wire-format constants must hash-match analysis/wire_frozen.toml",
        explain: "\
The token stream between `// analyze: wire-freeze` and
`// analyze: end-wire-freeze` (the 18-byte header constants and the
frame-kind table in `wire/frame.rs`) is hashed and compared against
`analysis/wire_frozen.toml`. Any drift — a renumbered kind, a resized
header — breaks every deployed client, so it must be an explicit act.

Fix: if the change is intentional, bump `WIRE_VERSION` inside the
frozen span, then regenerate the manifest:
    cargo run -p privehd-analyze -- --emit-frozen > analysis/wire_frozen.toml
The reviewer sees the version bump and the new hash in the same diff.",
    },
];

/// Looks up a rule's metadata by name.
pub fn rule_info(name: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.name == name)
}
