//! `atomic-ordering`: non-`SeqCst` atomic orderings outside tests need
//! a written justification within 3 lines.

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::source::SourceFile;

/// Rule name.
pub const NAME: &str = "atomic-ordering";

/// Orderings that require justification. `SeqCst` is exempt — it is
/// the conservative default.
const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel"];

/// How many lines above the use a justification comment may start.
const WINDOW: usize = 3;

/// Checks one file for unjustified ordering uses.
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    let toks = &file.tokens;
    let mut diags = Vec::new();
    for i in 0..toks.len().saturating_sub(3) {
        // `::` lexes as two `:` puncts.
        let matched = toks[i].kind == TokKind::Ident
            && toks[i].text == "Ordering"
            && toks[i + 1].text == ":"
            && toks[i + 2].text == ":"
            && toks[i + 3].kind == TokKind::Ident
            && ORDERINGS.contains(&toks[i + 3].text.as_str());
        if !matched {
            continue;
        }
        let line = toks[i + 3].line;
        if file.in_test_region(line) || file.suppressed(NAME, line) {
            continue;
        }
        // `use …::Ordering::Relaxed;` imports a name; the justification
        // belongs at the use sites, not the import.
        let in_use_stmt = toks[..i]
            .iter()
            .rev()
            .take_while(|t| t.line == toks[i].line)
            .any(|t| t.kind == TokKind::Ident && t.text == "use");
        if in_use_stmt {
            continue;
        }
        let justified = file
            .comments_touching(line.saturating_sub(WINDOW), line)
            .any(|c| !c.text.trim().is_empty());
        if !justified {
            diags.push(Diagnostic::new(
                NAME,
                file.path_str(),
                line,
                format!(
                    "`Ordering::{}` has no justification comment within {WINDOW} lines; \
                     state the invariant that makes this ordering sufficient",
                    toks[i + 3].text
                ),
            ));
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("crates/core/src/telemetry.rs", src)
    }

    #[test]
    fn bare_relaxed_is_flagged_justified_is_not() {
        let src = "\
fn f(a: &AtomicU64) {
    a.fetch_add(1, Ordering::Relaxed);
    // Release: pairs with the Acquire load in snapshot_into; publishes
    // the slot payload written above.
    a.store(2, Ordering::Release);
}
";
        let diags = check(&parse(src));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 2);
        assert!(diags[0].message.contains("Ordering::Relaxed"));
    }

    #[test]
    fn seqcst_is_exempt() {
        let src = "fn f(a: &AtomicU64) { a.load(Ordering::SeqCst); }\n";
        assert!(check(&parse(src)).is_empty());
    }

    #[test]
    fn cmp_ordering_variants_do_not_match() {
        let src = "fn f() -> Ordering { Ordering::Greater }\n";
        assert!(check(&parse(src)).is_empty());
    }

    #[test]
    fn imports_and_tests_are_exempt() {
        let src = "\
use std::sync::atomic::Ordering::Relaxed;
#[cfg(test)]
mod tests {
    fn t(a: &AtomicU64) { a.load(Ordering::Relaxed); }
}
";
        assert!(check(&parse(src)).is_empty());
    }

    #[test]
    fn trailing_comment_on_the_same_line_counts() {
        let src = "fn f(a: &AtomicU64) {\n    a.load(Ordering::Acquire); // pairs with Release in push()\n}\n";
        assert!(check(&parse(src)).is_empty());
    }

    #[test]
    fn comment_further_than_window_does_not_count() {
        let src = "// a justification, but too far away\n\n\n\n\nfn f(a: &AtomicU64) { a.load(Ordering::Acquire); }\n";
        assert_eq!(check(&parse(src)).len(), 1);
    }
}
