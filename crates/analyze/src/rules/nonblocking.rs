//! `nonblocking-region`: no blocking calls inside marked poll-loop
//! spans.

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::source::SourceFile;

/// Rule name (also the region marker name).
pub const NAME: &str = "nonblocking-region";

/// Method/function names that block the calling thread. Matched only
/// in call position (`.name(` or `::name(`), so locals named `lock`
/// or struct fields don't trip it.
const BLOCKING: &[&str] = &[
    "lock",
    "recv",
    "recv_timeout",
    "join",
    "sleep",
    "wait",
    "wait_timeout",
    "park",
    "read_to_end",
    "read_to_string",
    "read_exact",
];

/// Checks blocking calls inside `nonblocking-region` spans of `file`.
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    let spans: Vec<_> = file
        .regions
        .iter()
        .filter(|r| r.name == NAME)
        .map(|r| r.lines.clone())
        .collect();
    if spans.is_empty() {
        return Vec::new();
    }
    let toks = &file.tokens;
    let mut diags = Vec::new();
    for i in 1..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !BLOCKING.contains(&t.text.as_str()) {
            continue;
        }
        // `::` lexes as two `:` puncts, so path calls show a single
        // `:` immediately before the name.
        let prev = &toks[i - 1].text;
        let is_call =
            (prev == "." || prev == ":") && toks.get(i + 1).is_some_and(|n| n.text == "(");
        if !is_call {
            continue;
        }
        if !spans.iter().any(|s| s.contains(&t.line)) {
            continue;
        }
        if file.in_test_region(t.line) || file.suppressed(NAME, t.line) {
            continue;
        }
        diags.push(Diagnostic::new(
            NAME,
            file.path_str(),
            t.line,
            format!(
                "blocking call `{}()` inside a nonblocking-region; this stalls the poll \
                 thread for every connection — use a try_ variant or move it to the pool",
                t.text
            ),
        ));
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("crates/serve/src/wire/server.rs", src)
    }

    #[test]
    fn blocking_calls_inside_region_are_flagged() {
        let src = "\
// analyze: nonblocking-region
fn pump(&mut self) {
    let g = self.state.lock();
    let v = rx.recv();
    std::thread::sleep(d);
}
// analyze: end-nonblocking-region
";
        let diags = check(&parse(src));
        assert_eq!(diags.len(), 3, "{diags:?}");
        assert_eq!(diags[0].line, 3);
        assert_eq!(diags[1].line, 4);
        assert_eq!(diags[2].line, 5);
    }

    #[test]
    fn same_calls_outside_region_are_fine() {
        let src = "\
fn setup(&mut self) { let g = self.state.lock(); }
// analyze: nonblocking-region
fn pump(&mut self) { let v = rx.try_recv(); }
// analyze: end-nonblocking-region
fn teardown(h: JoinHandle<()>) { h.join(); }
";
        assert!(check(&parse(src)).is_empty());
    }

    #[test]
    fn non_call_uses_of_blocking_names_are_fine() {
        let src = "\
// analyze: nonblocking-region
fn pump(&mut self) {
    let lock = self.lock_state;
    if self.join { return; }
}
// analyze: end-nonblocking-region
";
        assert!(check(&parse(src)).is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let src = "\
// analyze: nonblocking-region
fn pump(&mut self) {
    // analyze::allow(nonblocking-region): channel is unbounded, recv cannot block here after is_ready()
    let v = rx.recv();
}
// analyze: end-nonblocking-region
";
        assert!(check(&parse(src)).is_empty());
    }
}
