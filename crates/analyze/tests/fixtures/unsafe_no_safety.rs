//! Fixture: an unsafe block with no audit comment anywhere near it.

pub fn read_first(bytes: &[u8]) -> u8 {
    let ptr = bytes.as_ptr();
    unsafe { *ptr }
}
