//! Fixture: a blocking call inside a marked nonblocking region.

// analyze: nonblocking-region
pub fn pump(rx: &std::sync::mpsc::Receiver<u8>) -> Option<u8> {
    rx.recv().ok()
}
// analyze: end-nonblocking-region
