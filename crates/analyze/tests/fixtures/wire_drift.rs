//! Fixture: `wire_original.rs` after a header-layout change that did
//! not regenerate the frozen manifest.

// analyze: wire-freeze
pub const MAGIC: [u8; 4] = *b"PVHD";
pub const WIRE_VERSION: u8 = 1;
pub const HEADER_LEN: usize = 22;
// analyze: end-wire-freeze
