//! Fixture: the frozen "before" version of a wire constant block.

// analyze: wire-freeze
pub const MAGIC: [u8; 4] = *b"PVHD";
pub const WIRE_VERSION: u8 = 1;
pub const HEADER_LEN: usize = 18;
// analyze: end-wire-freeze
