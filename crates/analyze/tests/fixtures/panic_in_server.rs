//! Fixture: panics on the serve path (scanned as if it were
//! `crates/serve/src/wire/server.rs`).

pub fn pump(frames: &[u8], idx: usize) -> u8 {
    let first = frames.first().unwrap();
    if idx > frames.len() {
        panic!("index out of range");
    }
    first + frames[idx]
}
