//! Fixture: the same site as `unsafe_original.rs` after an edit
//! *inside* the unsafe block — the ledger hash must no longer match.

pub fn read_at(bytes: &[u8], i: usize) -> u8 {
    assert!(i < bytes.len());
    // SAFETY: `i` is bounds-checked by the assert above.
    unsafe { bytes.as_ptr().add(i).read() }
}
