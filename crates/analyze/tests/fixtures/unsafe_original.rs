//! Fixture: the audited "before" version of an unsafe site.

pub fn read_at(bytes: &[u8], i: usize) -> u8 {
    assert!(i < bytes.len());
    // SAFETY: `i` is bounds-checked by the assert above.
    unsafe { *bytes.as_ptr().add(i) }
}
