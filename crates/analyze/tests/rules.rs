//! Fixture-driven rule tests: each seeded violation must surface as a
//! diagnostic naming the exact rule, file, and line — plus the
//! clean-tree contract: the shipped workspace analyzes to zero
//! findings.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

use privehd_analyze::source::SourceFile;
use privehd_analyze::{analyze_files, analyze_workspace, Manifests, PANIC_PATH_SCOPE};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Parses a fixture under a pretend in-tree path so path-scoped rules
/// (no-panic-path) apply.
fn parse_as(name: &str, rel_path: &str) -> SourceFile {
    SourceFile::parse(rel_path, &fixture(name))
}

fn run(files: Vec<SourceFile>, manifests: &Manifests) -> Vec<(String, String, usize)> {
    analyze_files(&files, manifests, PANIC_PATH_SCOPE)
        .diagnostics
        .into_iter()
        .map(|d| (d.rule, d.file, d.line))
        .collect()
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/analyze sits two levels under the repo root")
        .to_path_buf()
}

#[test]
fn unsafe_without_safety_names_rule_file_and_line() {
    let f = parse_as("unsafe_no_safety.rs", "crates/core/src/fx.rs");
    let diags = run(vec![f], &Manifests::default());
    // Missing SAFETY and missing ledger entry — both on the unsafe line.
    assert_eq!(diags.len(), 2, "{diags:?}");
    for (rule, file, line) in &diags {
        assert_eq!(rule, "unsafe-ledger");
        assert_eq!(file, "crates/core/src/fx.rs");
        assert_eq!(*line, 5);
    }
}

#[test]
fn edited_unsafe_site_fails_its_stale_ledger_entry() {
    let original = parse_as("unsafe_original.rs", "crates/core/src/fx.rs");
    let audited = analyze_files(&[original], &Manifests::default(), PANIC_PATH_SCOPE);
    let manifests = Manifests {
        ledger: audited
            .unsafe_sites
            .iter()
            .map(|s| (s.file.clone(), s.hash.clone(), s.context.clone()))
            .collect(),
        frozen: BTreeMap::new(),
    };

    // The audited version passes against its own ledger…
    let original = parse_as("unsafe_original.rs", "crates/core/src/fx.rs");
    assert_eq!(run(vec![original], &manifests), vec![]);

    // …the edited version fails it: one not-in-ledger finding at the
    // site, one stale-entry finding against the manifest.
    let edited = parse_as("unsafe_edited.rs", "crates/core/src/fx.rs");
    let diags = run(vec![edited], &manifests);
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(
        diags.contains(&("unsafe-ledger".into(), "crates/core/src/fx.rs".into(), 7)),
        "{diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.1 == "analysis/unsafe_ledger.toml"),
        "the stale audit entry must be flagged too: {diags:?}"
    );
}

#[test]
fn panics_on_the_serve_path_are_flagged_per_site() {
    let f = parse_as("panic_in_server.rs", "crates/serve/src/wire/server.rs");
    let mut diags = run(vec![f], &Manifests::default());
    diags.sort();
    let expect = |line| {
        (
            "no-panic-path".to_string(),
            "crates/serve/src/wire/server.rs".to_string(),
            line,
        )
    };
    // unwrap, panic!, and the two slice indexes on line 9.
    assert_eq!(diags, vec![expect(5), expect(7), expect(9)], "{diags:?}");
}

#[test]
fn same_panics_outside_the_scoped_files_are_ignored() {
    let f = parse_as("panic_in_server.rs", "crates/data/src/loader.rs");
    assert_eq!(run(vec![f], &Manifests::default()), vec![]);
}

#[test]
fn unjustified_relaxed_is_flagged() {
    let f = parse_as("relaxed_unjustified.rs", "crates/core/src/fx.rs");
    let diags = run(vec![f], &Manifests::default());
    assert_eq!(
        diags,
        vec![("atomic-ordering".into(), "crates/core/src/fx.rs".into(), 8)],
    );
}

#[test]
fn blocking_call_inside_nonblocking_region_is_flagged() {
    let f = parse_as("blocking_in_region.rs", "crates/serve/src/wire/server.rs");
    let diags = run(vec![f], &Manifests::default());
    assert_eq!(
        diags,
        vec![(
            "nonblocking-region".into(),
            "crates/serve/src/wire/server.rs".into(),
            5,
        )],
    );
}

#[test]
fn drifted_wire_constant_fails_the_frozen_manifest() {
    let original = parse_as("wire_original.rs", "crates/serve/src/wire/frame.rs");
    let report = analyze_files(&[original], &Manifests::default(), PANIC_PATH_SCOPE);
    let manifests = Manifests {
        ledger: Vec::new(),
        frozen: report
            .frozen
            .iter()
            .map(|f| (f.file.clone(), f.hash.clone()))
            .collect(),
    };

    let original = parse_as("wire_original.rs", "crates/serve/src/wire/frame.rs");
    assert_eq!(run(vec![original], &manifests), vec![]);

    let drifted = parse_as("wire_drift.rs", "crates/serve/src/wire/frame.rs");
    let diags = run(vec![drifted], &manifests);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].0, "wire-freeze");
    assert_eq!(diags[0].1, "crates/serve/src/wire/frame.rs");
}

#[test]
fn shipped_workspace_is_clean() {
    let report = analyze_workspace(&repo_root()).expect("workspace scan");
    assert!(report.files > 50, "scan saw only {} files", report.files);
    assert_eq!(
        report.diagnostics,
        vec![],
        "the shipped tree must analyze clean"
    );
    assert!(
        !report.unsafe_sites.is_empty(),
        "core's AVX2 kernels must appear in the audit"
    );
}

#[test]
fn cli_workspace_exits_zero_on_the_shipped_tree() {
    let out = Command::new(env!("CARGO_BIN_EXE_privehd-analyze"))
        .args(["--workspace", "--root"])
        .arg(repo_root())
        .output()
        .expect("spawn privehd-analyze");
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("clean"));
}

#[test]
fn cli_explain_covers_every_rule() {
    for rule in [
        "unsafe-ledger",
        "no-panic-path",
        "atomic-ordering",
        "nonblocking-region",
        "wire-freeze",
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_privehd-analyze"))
            .args(["--explain", rule])
            .output()
            .expect("spawn privehd-analyze");
        assert!(out.status.success(), "--explain {rule} failed");
        assert!(
            String::from_utf8_lossy(&out.stdout).contains(rule),
            "--explain {rule} does not mention the rule"
        );
    }
}
