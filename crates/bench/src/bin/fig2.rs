//! Fig. 2 — original vs retrieved handwritten digits.
//!
//! Demonstrates the privacy breach of §III-A: the decoder of Eq. (10)
//! reconstructs the input pixels from a conventional (full-precision)
//! encoded hypervector. Prints ASCII renderings of the original and the
//! reconstruction for a few digits, plus per-digit MSE and PSNR.

use privehd_bench::report::json_flag;
use privehd_bench::Figure;
use privehd_core::prelude::*;
use privehd_data::{digits, surrogates};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dim = 10_000;
    let ds = surrogates::mnist(2, 1, 0);
    let encoder = ScalarEncoder::new(
        EncoderConfig::new(ds.features(), dim)
            .with_levels(100)
            .with_seed(1),
    )?;
    let decoder = Decoder::new(encoder.item_memory().clone());

    let mut fig = Figure::new(
        "fig2",
        "original vs retrieved digits (reconstruction attack, Eq. 10)",
        "digit",
        "PSNR dB / MSE",
    );

    println!("Reconstruction attack on conventional HD encoding (D_hv = {dim})\n");
    for digit in [3usize, 5, 8] {
        let sample = ds
            .test()
            .iter()
            .find(|s| s.label == digit)
            .expect("every digit has a test sample");
        let h = encoder.encode(&sample.features)?;
        let rec = decoder.decode(&h)?;
        let rec_img = rec.features_clamped();
        let m = mse(&sample.features, &rec_img)?;
        let p = psnr(&sample.features, &rec_img)?;
        fig.push("psnr_db", digit as f64, p);
        fig.push("mse", digit as f64, m);

        println!("--- digit {digit}: reconstruction PSNR {p:.1} dB, MSE {m:.4} ---");
        let orig_art = digits::to_ascii(&sample.features);
        let rec_art = digits::to_ascii(&rec_img);
        for (a, b) in orig_art.lines().zip(rec_art.lines()) {
            println!("{a}    {b}");
        }
        println!();
    }
    fig.emit(json_flag());
    println!(
        "Paper claim reproduced: pixels are retrieved one-by-one from the\n\
         encoded hypervector via v_m = (H · B_m) / D_hv; HD has no privacy\n\
         without Prive-HD's countermeasures."
    );
    Ok(())
}
