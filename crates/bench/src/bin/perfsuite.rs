//! `perfsuite` — kernel-vs-reference speedup measurements, plus a wire
//! round-trip suite.
//!
//! Default mode times the tuned `privehd_core::kernels` paths against
//! the retained naive reference implementations at the paper's
//! operating point (ISOLET: `D_iv = 617`, `D_hv = 10 000`,
//! `ℓ_iv = 100`, 26 classes), single-threaded, and writes the results
//! to `BENCH_kernels.json`. The `plan_compile_*` rows gate the
//! publish-time fusions of `privehd_core::plan` (fused encode∘obfuscate
//! and the one-time kernel-selected predict dispatch) against the
//! generic compositions they replace.
//!
//! `--serve` mode instead measures the wire front-end over a real
//! loopback TCP socket — synchronous round-trip p50/p99 latency,
//! pipelined frames/sec, the per-stage latency decomposition scraped
//! from the server's `Stats` frame (decode, admission, encode, queue,
//! batch-wait, snapshot-resolve, predict, write), and the e2e p50
//! cost of span tracing versus a tracing-disabled engine — and writes
//! `BENCH_serve.json`. The serve suite is report-only (no floor gate
//! yet: no trajectory exists to gate against), so
//! `--check`/`--floor-scale` apply to the kernel suite only.
//!
//! Usage:
//!
//! ```text
//! perfsuite [--quick] [--out PATH] [--check] [--floor-scale F] [--serve]
//! ```
//!
//! `--quick` shrinks sample counts and the batch size for CI smoke runs;
//! `--out` overrides the output path (default `BENCH_kernels.json`, or
//! `BENCH_serve.json` under `--serve`, in the working directory);
//! `--check` exits non-zero when a kernel speedup floor is missed;
//! `--floor-scale` multiplies the floors before checking (CI uses `0.5`
//! so shared-runner noise cannot flake the gate while catastrophic
//! regressions still fail).

use std::sync::Arc;
use std::time::{Duration, Instant};

use privehd_bench::print_table;
use privehd_core::telemetry::TelemetryConfig;
use privehd_core::{
    BipolarHv, EncodePlan, Encoder, EncoderConfig, HdModel, Hypervector, LevelEncoder, ModelPlan,
    ObfuscateConfig, Obfuscator, QuantScheme, ScalarEncoder,
};
use privehd_serve::wire::{WireClient, WireClientError, WireConfig, WireServer};
use privehd_serve::{ClientEdge, ModelId, ServeConfig, ServeEngine, ShardedRegistry};

/// ISOLET-shaped operating point from the paper.
const FEATURES: usize = 617;
const DIM: usize = 10_000;
const LEVELS: usize = 100;
const CLASSES: usize = 26;

/// Robust timing summary over repeated samples (nanoseconds per item).
#[derive(Debug, Clone, Copy)]
struct Stats {
    median: f64,
    mean: f64,
    stddev: f64,
}

/// Times `samples` runs of `f` (each covering `items` items) and
/// reports per-item nanoseconds. One untimed warmup run precedes the
/// samples.
fn time_per_item<F: FnMut()>(samples: usize, items: usize, mut f: F) -> Stats {
    f(); // warmup: faults pages, fills caches, builds lazy state
    let mut per_item: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as f64 / items as f64
        })
        .collect();
    per_item.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = per_item[per_item.len() / 2];
    let mean = per_item.iter().sum::<f64>() / per_item.len() as f64;
    let var = per_item
        .iter()
        .map(|x| (x - mean) * (x - mean))
        .sum::<f64>()
        / per_item.len() as f64;
    Stats {
        median,
        mean,
        stddev: var.sqrt(),
    }
}

/// One kernel-vs-reference comparison row.
#[derive(Debug)]
struct Comparison {
    name: &'static str,
    unit: &'static str,
    reference: Stats,
    kernel: Stats,
    /// Acceptance floor on `speedup()`, if this row has one.
    threshold: Option<f64>,
}

impl Comparison {
    fn speedup(&self) -> f64 {
        self.reference.median / self.kernel.median
    }

    fn meets_threshold(&self, floor_scale: f64) -> bool {
        self.threshold
            .is_none_or(|t| self.speedup() >= t * floor_scale)
    }
}

/// Deterministic pseudo-random `[0, 1)` feature vectors (no RNG
/// dependency needed for a benchmark workload).
fn feature_vectors(count: usize, features: usize, salt: u64) -> Vec<Vec<f64>> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ salt;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..count)
        .map(|_| (0..features).map(|_| next()).collect())
        .collect()
}

/// The bundled demo model the serve suite predicts against.
fn serve_model(classes: usize, dim: usize) -> HdModel {
    let mut model = HdModel::new(classes, dim).expect("valid model");
    for i in 0..(classes * 4) {
        let hv = BipolarHv::random(dim, i as u64).to_dense();
        model.bundle(i % classes, &hv).expect("bundle");
    }
    model
}

/// Sorted synchronous round-trip samples (nanoseconds): a warmup
/// burst, then one frame in flight at a time so each sample is a full
/// client→server→engine→client trip.
fn sync_rtt_ns(
    client: &mut WireClient,
    model_id: &ModelId,
    queries: &[BipolarHv],
    samples: usize,
) -> Vec<f64> {
    for q in queries.iter().take(16) {
        client.call_packed(model_id, q).expect("warmup call");
    }
    let mut rtt_ns: Vec<f64> = (0..samples)
        .map(|i| {
            let start = Instant::now();
            client
                .call_packed(model_id, &queries[i % queries.len()])
                .expect("rtt call");
            start.elapsed().as_nanos() as f64
        })
        .collect();
    rtt_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    rtt_ns
}

/// Closed-loop pipelined throughput: keep `window` frames in flight
/// until `frames` responses arrive; returns frames per second.
fn pipelined_fps(
    client: &mut WireClient,
    model_id: &ModelId,
    queries: &[BipolarHv],
    frames: usize,
    window: usize,
) -> f64 {
    let start = Instant::now();
    let mut sent = 0usize;
    let mut received = 0usize;
    while sent < window.min(frames) {
        client
            .send_packed(model_id, &queries[sent % queries.len()])
            .expect("pipelined send");
        sent += 1;
    }
    while received < frames {
        let resp = client.recv().expect("pipelined recv");
        assert!(resp.outcome.is_ok(), "pipelined frame failed");
        received += 1;
        if sent < frames {
            client
                .send_packed(model_id, &queries[sent % queries.len()])
                .expect("pipelined send");
            sent += 1;
        }
    }
    frames as f64 / start.elapsed().as_secs_f64()
}

/// One open-loop load point: offer `rate_qps` for `duration` without
/// waiting for responses (unbounded concurrency, like independent
/// clients), correlating responses by request id as they arrive, then
/// drain. Unlike the closed-loop pipelined measurement above, latency
/// here includes all queueing — this is the latency-under-load curve.
fn open_loop_point(
    addr: std::net::SocketAddr,
    model_id: &ModelId,
    queries: &[BipolarHv],
    rate_qps: f64,
    duration: Duration,
) -> serde_json::Value {
    let mut client = WireClient::connect(addr).expect("load-gen connect");
    client
        .set_read_timeout(Some(Duration::from_micros(200)))
        .expect("read timeout");
    let interval = Duration::from_secs_f64(1.0 / rate_qps);
    let mut sent_at: std::collections::HashMap<u64, Instant> = std::collections::HashMap::new();
    let record = |sent_at: &mut std::collections::HashMap<u64, Instant>,
                  lat_ns: &mut Vec<f64>,
                  busy: &mut usize,
                  resp: privehd_serve::wire::ResponseFrame| {
        if let Some(t0) = sent_at.remove(&resp.request_id) {
            match resp.outcome {
                Ok(_) => lat_ns.push(t0.elapsed().as_nanos() as f64),
                Err(_) => *busy += 1,
            }
        }
    };
    let mut lat_ns: Vec<f64> = Vec::new();
    let mut busy = 0usize;
    let mut sent = 0usize;
    let start = Instant::now();
    let mut next_send = start;
    while start.elapsed() < duration {
        let now = Instant::now();
        if now >= next_send {
            let id = client
                .send_packed(model_id, &queries[sent % queries.len()])
                .expect("load-gen send");
            sent_at.insert(id, Instant::now());
            sent += 1;
            next_send += interval;
            continue;
        }
        // Only park in a timed recv when the next send is far enough
        // away that the read timeout cannot skew the offered rate.
        if next_send - now < Duration::from_micros(300) {
            std::hint::spin_loop();
            continue;
        }
        match client.recv() {
            Ok(resp) => record(&mut sent_at, &mut lat_ns, &mut busy, resp),
            Err(WireClientError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => panic!("load-gen recv failed: {e}"),
        }
    }
    // Drain what is still in flight.
    client
        .set_read_timeout(Some(Duration::from_millis(500)))
        .expect("read timeout");
    while !sent_at.is_empty() {
        match client.recv() {
            Ok(resp) => record(&mut sent_at, &mut lat_ns, &mut busy, resp),
            Err(_) => break,
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    lat_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let q = |p: f64| {
        if lat_ns.is_empty() {
            0.0
        } else {
            lat_ns[(p * (lat_ns.len() - 1) as f64).round() as usize]
        }
    };
    serde_json::json!({
        "offered_qps": rate_qps,
        "sent": sent,
        "ok": lat_ns.len(),
        "busy": busy,
        "p50_us": q(0.50) / 1e3,
        "p99_us": q(0.99) / 1e3,
        "goodput_qps": lat_ns.len() as f64 / elapsed,
    })
}

fn push_stage_field(
    stages: &mut Vec<(String, Vec<(String, serde_json::Value)>)>,
    stage: &str,
    key: &str,
    value: serde_json::Value,
) {
    let idx = match stages.iter().position(|(s, _)| s == stage) {
        Some(i) => i,
        None => {
            stages.push((stage.to_owned(), Vec::new()));
            stages.len() - 1
        }
    };
    stages[idx].1.push((key.to_owned(), value));
}

/// Extracts `{stage: {count, p50_us, p95_us, p99_us}}` from the
/// Prometheus text of a `Stats` scrape, keyed by stage name in the
/// order the server emitted them.
fn parse_stage_decomposition(text: &str) -> serde_json::Value {
    const METRIC: &str = "privehd_serve_stage_latency_seconds";
    let mut stages: Vec<(String, Vec<(String, serde_json::Value)>)> = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.strip_prefix(METRIC) else {
            continue;
        };
        let Some(stage) = rest
            .split("stage=\"")
            .nth(1)
            .and_then(|s| s.split('"').next())
        else {
            continue;
        };
        let Some(value) = line.rsplit(' ').next().and_then(|v| v.parse::<f64>().ok()) else {
            continue;
        };
        if rest.starts_with("_count") {
            push_stage_field(
                &mut stages,
                stage,
                "count",
                serde_json::Value::Int(value as i64),
            );
        } else if rest.starts_with('{') {
            let key = match rest
                .split("quantile=\"")
                .nth(1)
                .and_then(|s| s.split('"').next())
            {
                Some("0.5") => "p50_us",
                Some("0.95") => "p95_us",
                Some("0.99") => "p99_us",
                _ => continue,
            };
            push_stage_field(
                &mut stages,
                stage,
                key,
                serde_json::Value::Float(value * 1e6),
            );
        }
    }
    serde_json::Value::Object(
        stages
            .into_iter()
            .map(|(s, fields)| (s, serde_json::Value::Object(fields)))
            .collect(),
    )
}

/// Wire round-trip measurements over a loopback socket: sync RTT
/// quantiles, pipelined throughput, the per-stage latency
/// decomposition scraped from the `Stats` frame, and the e2e p50
/// overhead of span tracing versus a tracing-disabled engine.
/// Report-only — there is no floor gate until a trajectory of runs
/// exists to set one honestly.
fn run_serve_suite(quick: bool, out_path: &str) {
    const SERVE_DIM: usize = 4_096;
    const SERVE_CLASSES: usize = 26;
    const RAW_FEATURES: usize = 64;
    let (rtt_samples, pipelined_frames, window) = if quick {
        (300usize, 1_000usize, 32usize)
    } else {
        (2_000, 10_000, 32)
    };
    let raw_calls = if quick { 32usize } else { 128 };
    let profile = if quick { "quick" } else { "full" };
    // Offered-rate sweep for the latency-under-load curve (open loop).
    let (sweep_rates, sweep_duration) = if quick {
        (vec![1_000.0f64, 4_000.0], Duration::from_millis(300))
    } else {
        (
            vec![1_000.0f64, 5_000.0, 20_000.0, 60_000.0],
            Duration::from_secs(1),
        )
    };
    // Reactor count for the multi-reactor server: at least 2 so the
    // sharded-accept path is exercised even on a 1-core container.
    let reactors_multi = std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(1)
        .max(2);
    eprintln!(
        "perfsuite [serve/{profile}]: D_hv={SERVE_DIM} classes={SERVE_CLASSES} \
         rtt_samples={rtt_samples} pipelined={pipelined_frames} window={window} \
         reactors={reactors_multi} (loopback TCP)"
    );

    let model_id = ModelId::default();
    let queries: Vec<BipolarHv> = (0..64)
        .map(|i| BipolarHv::random(SERVE_DIM, 1_000 + i as u64))
        .collect();
    let serve_config = ServeConfig {
        max_batch: 64,
        max_delay: Duration::from_micros(200),
        packed_fastpath: true,
        ..ServeConfig::default()
    };

    // --- Baseline pass: identical engine + server with the tracing
    //     spine disabled, sync RTTs only. Stage histograms always
    //     record; this isolates the cost of span capture. ------------
    let baseline_engine = ServeEngine::start(
        Arc::new(
            ShardedRegistry::with_model(
                serve_model(SERVE_CLASSES, SERVE_DIM),
                "perfsuite-baseline",
            )
            .expect("publish"),
        ),
        ServeConfig {
            telemetry: TelemetryConfig::disabled(),
            ..serve_config.clone()
        },
    )
    .expect("baseline engine start");
    let baseline_server = WireServer::start(
        "127.0.0.1:0",
        baseline_engine.handle(),
        WireConfig {
            max_in_flight: window.max(64),
            ..WireConfig::default()
        },
    )
    .expect("baseline wire server start");
    let mut baseline_client =
        WireClient::connect(baseline_server.local_addr()).expect("baseline connect");
    let baseline_rtt = sync_rtt_ns(&mut baseline_client, &model_id, &queries, rtt_samples);
    let baseline_p50 = baseline_rtt[(0.50 * (baseline_rtt.len() - 1) as f64).round() as usize];
    drop(baseline_client);
    baseline_server.shutdown();
    baseline_engine.shutdown();

    // --- Instrumented pass: default telemetry (sampling on). --------
    let registry = Arc::new(
        ShardedRegistry::with_model(serve_model(SERVE_CLASSES, SERVE_DIM), "perfsuite")
            .expect("publish"),
    );
    let engine = ServeEngine::start(registry, serve_config).expect("engine start");
    let edge = ClientEdge::new(
        EncoderConfig::new(RAW_FEATURES, SERVE_DIM).with_seed(5),
        ObfuscateConfig::new(QuantScheme::Bipolar),
    )
    .expect("valid edge config");
    let server = WireServer::start(
        "127.0.0.1:0",
        engine.handle(),
        WireConfig {
            max_in_flight: window.max(64),
            reactors: reactors_multi,
            ..WireConfig::default()
        }
        .with_edge(model_id.clone(), edge),
    )
    .expect("wire server start");
    let mut client = WireClient::connect(server.local_addr()).expect("connect");

    let rtt_ns = sync_rtt_ns(&mut client, &model_id, &queries, rtt_samples);
    let quantile = |q: f64| rtt_ns[((q * (rtt_ns.len() - 1) as f64).round()) as usize];
    let (p50, p99) = (quantile(0.50), quantile(0.99));
    let mean = rtt_ns.iter().sum::<f64>() / rtt_ns.len() as f64;
    // Shared-runner jitter can make the traced pass land *faster* than
    // the baseline; a negative overhead is noise, not a speedup bought
    // by tracing. Clamp the headline number at zero and keep the raw
    // delta plus both raw p50s in the JSON so the jitter stays visible.
    let overhead_pct_raw = (p50 - baseline_p50) / baseline_p50 * 100.0;
    let overhead_pct = overhead_pct_raw.max(0.0);

    // Pipelined throughput on the multi-reactor server, then on a
    // single-reactor server fronting the *same* engine, to isolate the
    // ingress layer from the batching/compute behind it.
    let frames_per_sec = pipelined_fps(&mut client, &model_id, &queries, pipelined_frames, window);
    let single_server = WireServer::start(
        "127.0.0.1:0",
        engine.handle(),
        WireConfig {
            max_in_flight: window.max(64),
            reactors: 1,
            ..WireConfig::default()
        },
    )
    .expect("single-reactor wire server start");
    let mut single_client =
        WireClient::connect(single_server.local_addr()).expect("single-reactor connect");
    let single_reactor_fps = pipelined_fps(
        &mut single_client,
        &model_id,
        &queries,
        pipelined_frames,
        window,
    );
    drop(single_client);
    single_server.shutdown();

    // Latency-under-load: open-loop offered-rate sweep against the
    // multi-reactor server. Each point uses a fresh connection, so
    // successive points land on different reactors (fd % N pinning).
    let mut load_points = Vec::new();
    for rate in &sweep_rates {
        let point = open_loop_point(
            server.local_addr(),
            &model_id,
            &queries,
            *rate,
            sweep_duration,
        );
        eprintln!("  open-loop @ {rate:.0} q/s: {point}");
        load_points.push(point);
    }

    // Raw-features calls so the server-side Encode stage has samples
    // in the decomposition.
    for x in &feature_vectors(raw_calls, RAW_FEATURES, 3) {
        client.call_raw(&model_id, x).expect("raw call");
    }

    // Scrape the Stats frame and lift the stage decomposition out of
    // the Prometheus text.
    let stats_text = client.stats().expect("stats scrape");
    let stage_decomposition = parse_stage_decomposition(&stats_text);

    drop(client);
    let wire_report = server.shutdown();
    engine.shutdown();

    let mut rows = vec![
        vec!["metric".to_owned(), "value".to_owned()],
        vec!["rtt_p50".to_owned(), format!("{:.1} µs", p50 / 1e3)],
        vec!["rtt_p99".to_owned(), format!("{:.1} µs", p99 / 1e3)],
        vec!["rtt_mean".to_owned(), format!("{:.1} µs", mean / 1e3)],
        vec![
            "pipelined".to_owned(),
            format!("{frames_per_sec:.0} frames/s (window {window}, {reactors_multi} reactors)"),
        ],
        vec![
            "pipelined (1 reactor)".to_owned(),
            format!("{single_reactor_fps:.0} frames/s (window {window})"),
        ],
        vec![
            "rtt_p50 (tracing off)".to_owned(),
            format!("{:.1} µs", baseline_p50 / 1e3),
        ],
        vec![
            "tracing overhead".to_owned(),
            format!("{overhead_pct:+.2}% e2e p50"),
        ],
    ];
    for point in &load_points {
        let field = |key: &str| {
            if let serde_json::Value::Object(f) = point {
                f.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
            } else {
                None
            }
        };
        let (
            Some(serde_json::Value::Float(rate)),
            Some(serde_json::Value::Float(p99)),
            Some(serde_json::Value::Float(goodput)),
        ) = (field("offered_qps"), field("p99_us"), field("goodput_qps"))
        else {
            continue;
        };
        rows.push(vec![
            format!("open-loop @ {rate:.0} q/s"),
            format!("p99 {p99:.1} µs, goodput {goodput:.0} q/s"),
        ]);
    }
    if let serde_json::Value::Object(stages) = &stage_decomposition {
        for (stage, fields) in stages {
            let field = |key: &str| {
                if let serde_json::Value::Object(f) = fields {
                    f.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
                } else {
                    None
                }
            };
            let (Some(serde_json::Value::Float(p50)), Some(serde_json::Value::Int(count))) =
                (field("p50_us"), field("count"))
            else {
                continue;
            };
            rows.push(vec![
                format!("stage {stage}"),
                format!("{p50:.1} µs p50 ({count} samples)"),
            ]);
        }
    }
    print_table(&rows);

    let doc = serde_json::json!({
        "suite": "serve",
        "profile": profile,
        "report_only": true,
        "config": serde_json::json!({
            "dim": SERVE_DIM,
            "classes": SERVE_CLASSES,
            "rtt_samples": rtt_samples,
            "pipelined_frames": pipelined_frames,
            "window": window,
            "raw_calls": raw_calls,
        }),
        "results": serde_json::json!({
            "rtt_p50_us": p50 / 1e3,
            "rtt_p99_us": p99 / 1e3,
            "rtt_mean_us": mean / 1e3,
            "frames_per_sec": frames_per_sec,
            "pipelined_multi_reactor_fps": frames_per_sec,
            "pipelined_single_reactor_fps": single_reactor_fps,
            "reactors_multi": reactors_multi as i64,
            "reactors_single": 1,
            "latency_under_load": serde_json::Value::Array(load_points.clone()),
            "busy_rejections": wire_report.busy_rejections,
            "stats_served": wire_report.stats_served,
            "e2e_p50_us_tracing_disabled": baseline_p50 / 1e3,
            "e2e_p50_us_tracing_enabled": p50 / 1e3,
            "tracing_overhead_pct": overhead_pct,
            "tracing_overhead_pct_raw": overhead_pct_raw,
        }),
        "stage_decomposition": stage_decomposition,
    });
    std::fs::write(out_path, format!("{doc}\n")).expect("write serve benchmark report");
    eprintln!("wrote {out_path} (report-only)");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let serve = args.iter().any(|a| a == "--serve");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or(
            if serve {
                "BENCH_serve.json"
            } else {
                "BENCH_kernels.json"
            },
            |s| s.as_str(),
        );
    if serve {
        run_serve_suite(quick, out_path);
        return;
    }
    let floor_scale = args
        .iter()
        .position(|a| a == "--floor-scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0);

    let (samples, encode_items, batch) = if quick { (3, 3, 64) } else { (7, 8, 256) };
    let profile = if quick { "quick" } else { "full" };
    eprintln!(
        "perfsuite [{profile}]: D_iv={FEATURES} D_hv={DIM} levels={LEVELS} classes={CLASSES} \
         batch={batch} (single-thread)"
    );

    let scalar = ScalarEncoder::new(
        EncoderConfig::new(FEATURES, DIM)
            .with_levels(LEVELS)
            .with_seed(7),
    )
    .expect("valid encoder config");
    let level = LevelEncoder::new(
        EncoderConfig::new(FEATURES, DIM)
            .with_levels(LEVELS)
            .with_seed(7),
    )
    .expect("valid encoder config");
    let encode_inputs = feature_vectors(encode_items, FEATURES, 1);

    let mut results = Vec::new();

    // --- Scalar encode: level-sliced popcount kernel vs ±v bit-walk ---
    let kernel = time_per_item(samples, encode_items, || {
        for x in &encode_inputs {
            std::hint::black_box(scalar.encode(x).expect("encode"));
        }
    });
    let reference = time_per_item(samples, encode_items, || {
        for x in &encode_inputs {
            std::hint::black_box(scalar.encode_reference(x).expect("encode"));
        }
    });
    results.push(Comparison {
        name: "scalar_encode",
        unit: "encode",
        reference,
        kernel,
        threshold: Some(3.0),
    });

    // --- Level encode: CSA majority accumulation vs per-row walk ------
    let kernel = time_per_item(samples, encode_items, || {
        for x in &encode_inputs {
            std::hint::black_box(level.encode(x).expect("encode"));
        }
    });
    let reference = time_per_item(samples, encode_items, || {
        for x in &encode_inputs {
            std::hint::black_box(level.encode_reference(x).expect("encode"));
        }
    });
    results.push(Comparison {
        name: "level_encode",
        unit: "encode",
        reference,
        kernel,
        threshold: None,
    });

    // --- Batched predict: blocked ClassMatrix tiles vs naive loop -----
    let query_inputs = feature_vectors(batch, FEATURES, 2);
    let queries: Vec<Hypervector> = query_inputs
        .iter()
        .map(|x| scalar.encode(x).expect("encode"))
        .collect();
    let mut model = HdModel::new(CLASSES, DIM).expect("valid model");
    for (i, q) in queries.iter().enumerate() {
        model.bundle(i % CLASSES, q).expect("bundle");
    }
    model.refresh_norms();

    let kernel = time_per_item(samples, batch, || {
        std::hint::black_box(model.predict_batch_with(&queries, 1).expect("predict"));
    });
    let reference = time_per_item(samples, batch, || {
        for q in &queries {
            std::hint::black_box(model.predict_reference(q).expect("predict"));
        }
    });
    results.push(Comparison {
        name: "predict_batch",
        unit: "query",
        reference,
        kernel,
        threshold: Some(2.0),
    });

    // --- Packed-native predict: popcount scoring on the sign-quantized
    //     model vs densify-at-submit feeding the tuned dense batched
    //     predict. Both arms classify the same bit-packed wire queries
    //     against the same class memory; the reference arm pays the
    //     `to_dense()` conversion *inside* the timed region because
    //     that is exactly what a server densifying at submit pays per
    //     request. --------------------------------------------------
    let mut packed_model = model.clone();
    packed_model.quantize_classes(QuantScheme::Bipolar);
    packed_model.refresh_norms();
    assert!(
        packed_model.packed_class_matrix().is_some(),
        "bipolar class quantization must yield a packable model"
    );
    let packed: Vec<BipolarHv> = (0..batch.min(64))
        .map(|i| BipolarHv::random(DIM, i as u64))
        .collect();
    let kernel = time_per_item(samples, packed.len(), || {
        for q in &packed {
            std::hint::black_box(packed_model.predict_packed(q).expect("predict"));
        }
    });
    let reference = time_per_item(samples, packed.len(), || {
        let densified: Vec<Hypervector> = packed.iter().map(BipolarHv::to_dense).collect();
        std::hint::black_box(
            packed_model
                .predict_batch_with(&densified, 1)
                .expect("predict"),
        );
    });
    results.push(Comparison {
        name: "predict_packed",
        unit: "query",
        reference,
        kernel,
        threshold: Some(4.0),
    });

    // --- Compiled plan, fused encode∘obfuscate: the publish-time
    //     `EncodePlan` folds the obfuscation keep-mask into the Bipolar
    //     encode so masked dimensions never accumulate, vs the generic
    //     composition (tuned encode, then a separate obfuscation pass
    //     that quantizes everything and zeroes the mask afterwards).
    //     Half the dimensions masked is the paper's aggressive privacy
    //     point, where the fusion win is roughly the masked fraction. --
    let masked_dims = DIM / 2;
    let obfuscate_config = ObfuscateConfig::new(QuantScheme::Bipolar)
        .with_masked_dims(masked_dims)
        .with_seed(11);
    let obfuscator = Obfuscator::new(DIM, obfuscate_config).expect("valid obfuscation config");
    let encode_plan = EncodePlan::from_obfuscator(&obfuscator);
    let kernel = time_per_item(samples, encode_items, || {
        for x in &encode_inputs {
            std::hint::black_box(encode_plan.apply(&scalar, x).expect("encode"));
        }
    });
    let reference = time_per_item(samples, encode_items, || {
        for x in &encode_inputs {
            let h = scalar.encode(x).expect("encode");
            std::hint::black_box(obfuscator.obfuscate(&h).expect("obfuscate"));
        }
    });
    results.push(Comparison {
        name: "plan_compile_encode_obfuscate",
        unit: "encode",
        reference,
        kernel,
        threshold: Some(1.5),
    });

    // --- Compiled plan, predict dispatch: the plan's pinned snapshot +
    //     publish-time kernel selection must dispatch at least as fast
    //     as the generic `HdModel::predict` entry it replaces in the
    //     serving engine (which re-resolves lazy state and notes a
    //     kernel probe on every call). Scoring work is identical by
    //     construction — this row is a dispatch-overhead guard, not a
    //     kernel speedup, so it carries no floor. ----------------------
    let model_plan = ModelPlan::compile(&packed_model);
    let dense_bipolar: Vec<Hypervector> = packed.iter().map(BipolarHv::to_dense).collect();
    let kernel = time_per_item(samples, dense_bipolar.len(), || {
        for q in &dense_bipolar {
            std::hint::black_box(model_plan.predict_dense(q).expect("predict"));
        }
    });
    let reference = time_per_item(samples, dense_bipolar.len(), || {
        for q in &dense_bipolar {
            std::hint::black_box(packed_model.predict(q).expect("predict"));
        }
    });
    results.push(Comparison {
        name: "plan_compile_predict",
        unit: "query",
        reference,
        kernel,
        threshold: None,
    });

    // --- Report -------------------------------------------------------
    let mut rows = vec![vec![
        "kernel".to_owned(),
        "reference".to_owned(),
        "tuned".to_owned(),
        "speedup".to_owned(),
        "floor".to_owned(),
    ]];
    for c in &results {
        rows.push(vec![
            c.name.to_owned(),
            format!("{:.2} ms/{}", c.reference.median / 1e6, c.unit),
            format!("{:.2} ms/{}", c.kernel.median / 1e6, c.unit),
            format!("{:.2}×", c.speedup()),
            c.threshold.map_or("-".to_owned(), |t| format!("≥{t}×")),
        ]);
    }
    print_table(&rows);

    let all_met = results.iter().all(|c| c.meets_threshold(floor_scale));
    let rows_json: Vec<serde_json::Value> = results
        .iter()
        .map(|c| {
            serde_json::json!({
                "name": c.name,
                "unit": c.unit,
                "reference_ns": c.reference.median,
                "reference_mean_ns": c.reference.mean,
                "reference_stddev_ns": c.reference.stddev,
                "kernel_ns": c.kernel.median,
                "kernel_mean_ns": c.kernel.mean,
                "kernel_stddev_ns": c.kernel.stddev,
                "speedup": c.speedup(),
                "threshold": c.threshold.map_or(serde_json::Value::Null, serde_json::Value::Float),
                "threshold_met": c.meets_threshold(floor_scale),
            })
        })
        .collect();
    let doc = serde_json::json!({
        "suite": "kernels",
        "profile": profile,
        "config": serde_json::json!({
            "features": FEATURES,
            "dim": DIM,
            "levels": LEVELS,
            "classes": CLASSES,
            "batch": batch,
            "samples": samples,
            "threads": 1usize,
        }),
        "results": rows_json,
        "thresholds_met": all_met,
    });
    std::fs::write(out_path, format!("{doc}\n")).expect("write benchmark report");
    eprintln!("wrote {out_path} (thresholds_met: {all_met})");

    if args.iter().any(|a| a == "--check") && !all_met {
        std::process::exit(1);
    }
}
