//! Fig. 7 / Eq. 15 — the approximate hardware encoder: resource savings
//! and accuracy cost.
//!
//! * Resource table: LUT-6 counts per output dimension for the exact vs
//!   approximate bipolar circuit (Eq. 15: 4/3·d vs 7/18·d, −70.8%) and
//!   the exact vs saturated ternary tree (3d vs 2d, −33.3%), for the
//!   three benchmark feature counts.
//! * Accuracy: end-to-end classification with the simulated LUT-majority
//!   encoder vs the exact software pipeline (paper: <1% loss), plus the
//!   cascade-depth ablation (`--cascade`) showing why the paper stops at
//!   one majority stage. The workload is a dedicated level-encoding-
//!   friendly synthetic task (see inline comment) so the measured delta
//!   isolates the circuit, not the dataset.
//! * `--verilog` dumps the generated synthesizable RTL of the
//!   approximate pipeline instead of running the experiment.

use privehd_bench::report::{format_num, json_flag, print_table};
use privehd_bench::Figure;
use privehd_core::prelude::*;
use privehd_core::{HdError, Hypervector, LevelEncoder};
use privehd_data::{ClusterSpec, Dataset, SyntheticGenerator};
use privehd_hw::{HardwareEncoder, MajorityCircuit, ResourceModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if std::env::args().any(|a| a == "--verilog") {
        // Emit the synthesizable RTL of one approximate pipeline at the
        // ISOLET feature count, as the paper hand-crafted (§IV-C).
        print!(
            "{}",
            privehd_hw::verilog::encoder_top("prive_hd_encoder", 617, 4, true)
        );
        return Ok(());
    }
    resource_table();
    // A dedicated validation workload on which the record/level encoding
    // (Eq. 2b, the one the hardware implements) is strong, so the
    // accuracy delta isolates the circuit approximation rather than the
    // surrogate's difficulty (the calibrated ISOLET surrogate carries its
    // signal in feature magnitudes, which suits Eq. 2a better).
    let ds = SyntheticGenerator::new(
        ClusterSpec::new("hw-validation", 617, 26)
            .with_samples(10, 5)
            .with_difficulty(0.27, 0.28)
            .with_nuisance(0.2)
            .with_seed(42),
    )
    .generate();
    let dim = 1_024;

    let mut fig = Figure::new(
        "fig7",
        "hardware majority encoder: accuracy vs circuit (hw-validation workload)",
        "majority stages",
        "accuracy %",
    );
    let max_stage = if std::env::args().any(|a| a == "--cascade") {
        4
    } else {
        1
    };
    let mut exact_acc = 0.0;
    for stages in 0..=max_stage {
        let (acc, agreement) = hardware_accuracy(&ds, dim, stages)?;
        if stages == 0 {
            exact_acc = acc;
        }
        fig.push("accuracy", stages as f64, acc * 100.0);
        fig.push("dim agreement", stages as f64, agreement * 100.0);
        println!(
            "{stages} majority stage(s): accuracy {:.1}% (exact {:.1}%), \
             per-dimension agreement {:.1}%",
            acc * 100.0,
            exact_acc * 100.0,
            agreement * 100.0
        );
    }
    fig.emit(json_flag());
    Ok(())
}

fn resource_table() {
    let mut rows = vec![vec![
        "d_iv".to_owned(),
        "bipolar exact".to_owned(),
        "bipolar approx".to_owned(),
        "saving %".to_owned(),
        "ternary exact".to_owned(),
        "ternary saturated".to_owned(),
        "saving %".to_owned(),
    ]];
    for (name, d) in [("ISOLET", 617usize), ("FACE", 608), ("MNIST", 784)] {
        let m = ResourceModel::new(d);
        rows.push(vec![
            format!("{name} ({d})"),
            format_num(m.bipolar_exact()),
            format_num(m.bipolar_approx()),
            format!("{:.1}", m.bipolar_saving() * 100.0),
            format_num(m.ternary_exact()),
            format_num(m.ternary_saturated()),
            format!("{:.1}", m.ternary_saving() * 100.0),
        ]);
    }
    println!("LUT-6 per output dimension (Eq. 15):");
    print_table(&rows);
    println!();
}

/// Trains and evaluates a model whose encodings come from the simulated
/// hardware (`stages` majority stages; 0 = exact), and reports the
/// per-dimension agreement with the software reference.
fn hardware_accuracy(ds: &Dataset, dim: usize, stages: usize) -> Result<(f64, f64), HdError> {
    let encoder = LevelEncoder::new(
        EncoderConfig::new(ds.features(), dim)
            .with_levels(32)
            .with_seed(3),
    )?;
    let hw = HardwareEncoder::with_circuit(encoder, MajorityCircuit::with_stages(stages));

    let encode_split =
        |samples: &[privehd_data::Sample]| -> Result<Vec<(Hypervector, usize)>, HdError> {
            samples
                .iter()
                .map(|s| Ok((hw.encode_dense(&s.features)?, s.label)))
                .collect()
        };
    let train = encode_split(ds.train())?;
    let test = encode_split(ds.test())?;
    let model = HdModel::train(ds.num_classes(), dim, &train)?;
    let acc = model.accuracy(&test)?;
    let agreement = hw.agreement(&ds.test()[0].features)?;
    Ok((acc, agreement))
}
