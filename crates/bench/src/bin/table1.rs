//! Table I — Prive-HD on FPGA vs Raspberry Pi vs GPU: inference
//! throughput (inputs/s) and energy per input (J).
//!
//! Uses the analytic platform models of `privehd-hw` (documented
//! estimates of each platform's effective op rate and power — see
//! DESIGN.md §4); the reproduced quantity is the *shape*: the FPGA wins
//! throughput by ~10⁵× over the Pi and ~16× over the GPU, and energy by
//! ~5×10⁴× and ~300×.

use privehd_bench::report::{format_num, json_flag, print_table};
use privehd_core::QuantScheme;
use privehd_hw::design::FpgaDesign;
use privehd_hw::perf::{table1, Platform, PlatformKind, Workload};

fn main() {
    let workloads = Workload::paper_benchmarks();
    let rows_data = table1(&workloads);

    let mut rows = vec![vec![
        "".to_owned(),
        "Pi tput".to_owned(),
        "Pi J".to_owned(),
        "GPU tput".to_owned(),
        "GPU J".to_owned(),
        "FPGA tput".to_owned(),
        "FPGA J".to_owned(),
    ]];
    for r in &rows_data {
        let mut row = vec![r.workload.clone()];
        for (_, tput, energy) in &r.cells {
            row.push(format_num(*tput));
            row.push(format_num(*energy));
        }
        rows.push(row);
    }
    println!("Table I — throughput (inputs/s) and energy (J/input):");
    print_table(&rows);

    // Ratio summary, the numbers §IV-C quotes.
    let mut tput_vs_pi = 0.0;
    let mut tput_vs_gpu = 0.0;
    let mut energy_vs_pi = 0.0;
    let mut energy_vs_gpu = 0.0;
    for w in &workloads {
        let pi = Platform::paper(PlatformKind::RaspberryPi);
        let gpu = Platform::paper(PlatformKind::Gpu);
        let fpga = Platform::paper(PlatformKind::PriveHdFpga);
        tput_vs_pi += fpga.throughput(w) / pi.throughput(w);
        tput_vs_gpu += fpga.throughput(w) / gpu.throughput(w);
        energy_vs_pi += pi.energy_per_input(w) / fpga.energy_per_input(w);
        energy_vs_gpu += gpu.energy_per_input(w) / fpga.energy_per_input(w);
    }
    let n = workloads.len() as f64;
    println!();
    println!(
        "average FPGA speedup: {:.0}x vs Raspberry Pi (paper: 105,067x), \
         {:.1}x vs GPU (paper: 15.8x)",
        tput_vs_pi / n,
        tput_vs_gpu / n
    );
    println!(
        "average FPGA energy saving: {:.0}x vs Raspberry Pi (paper: 52,896x), \
         {:.0}x vs GPU (paper: 288x)",
        energy_vs_pi / n,
        energy_vs_gpu / n
    );

    // Structural cross-check: derive the FPGA throughput from the device
    // LUT budget + Eq. 15 resource model instead of an effective op rate.
    println!();
    println!("structural FPGA model (Kintex-7 XC7K325T, Eq. 15 pipelines):");
    let design = FpgaDesign::kintex7_325t();
    let mut rows = vec![vec![
        "".to_owned(),
        "pipelines".to_owned(),
        "cycles/input".to_owned(),
        "throughput".to_owned(),
        "J/input".to_owned(),
    ]];
    for w in &workloads {
        rows.push(vec![
            w.name.clone(),
            format_num(design.parallel_dims(w.features, QuantScheme::Bipolar, true) as f64),
            format_num(design.cycles_per_input(w, QuantScheme::Bipolar, true) as f64),
            format_num(design.throughput(w, QuantScheme::Bipolar, true)),
            format_num(design.energy_per_input(w, QuantScheme::Bipolar, true)),
        ]);
    }
    print_table(&rows);

    if json_flag() {
        for r in &rows_data {
            for (platform, tput, energy) in &r.cells {
                let rec = serde_json::json!({
                    "figure": "table1",
                    "workload": r.workload,
                    "platform": platform,
                    "throughput_per_s": tput,
                    "energy_j": energy,
                });
                println!("{rec}");
            }
        }
    }
}
