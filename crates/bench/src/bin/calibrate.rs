//! Calibration check: baseline full-precision accuracy of the three
//! dataset surrogates at 10,000 dimensions, next to the paper's bands
//! (ISOLET ≈ 93%, FACE ≈ 95%+, MNIST ≈ 90%+).
//!
//! Run after touching the surrogate difficulty constants in
//! `privehd-data`.

use privehd_bench::{print_table, Workbench};
use privehd_data::surrogates;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rows = vec![vec![
        "dataset".to_owned(),
        "baseline acc %".to_owned(),
        "bipolar-query acc %".to_owned(),
        "paper band %".to_owned(),
    ]];
    let sets = [
        (surrogates::isolet(40, 40, 0), "~93, drop <1"),
        (surrogates::face(40, 40, 0), "~95, drop <1"),
        (surrogates::mnist(40, 40, 0), "~90+, drop <1"),
    ];
    for (ds, band) in sets {
        let name = ds.name().to_owned();
        let wb = Workbench::new(ds, 10_000, 1)?;
        let model = wb.model_at(10_000, privehd_core::QuantScheme::Full)?;
        let acc = wb.accuracy_at(&model, 10_000, privehd_core::QuantScheme::Full)?;
        let acc_q = wb.accuracy_at(&model, 10_000, privehd_core::QuantScheme::Bipolar)?;
        rows.push(vec![
            name,
            format!("{:.1}", acc * 100.0),
            format!("{:.1}", acc_q * 100.0),
            band.to_owned(),
        ]);
    }
    print_table(&rows);
    Ok(())
}
