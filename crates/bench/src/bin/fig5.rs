//! Fig. 5 — accuracy-sensitivity trade-off of encoding quantization.
//!
//! (a) test accuracy vs hypervector dimensionality (1k–10k) when the
//! *encodings* are quantized (bipolar / ternary / biased ternary / 2-bit)
//! while class hypervectors stay full precision — the key difference to
//! prior quantization work \[17\] that quantized both.
//!
//! (b) the ℓ2 sensitivity (Eq. 14) of the same models: quantization makes
//! Δf independent of the feature count and √D_hv-shaped, with biased
//! ternary 0.87× below uniform ternary.

use privehd_bench::report::json_flag;
use privehd_bench::{Figure, Workbench};
use privehd_core::prelude::*;
use privehd_data::surrogates;
use privehd_privacy::Sensitivity;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let master_dim = 10_000;
    let ds = surrogates::isolet(30, 10, 0);
    let features = ds.features();
    let wb = Workbench::new(ds, master_dim, 1)?;

    let dims: Vec<usize> = (1..=10).map(|i| i * 1_000).collect();
    let schemes = [
        QuantScheme::Bipolar,
        QuantScheme::Ternary,
        QuantScheme::TernaryBiased,
        QuantScheme::TwoBit,
    ];

    let mut fig_a = Figure::new(
        "fig5a",
        "accuracy vs dimensions under encoding quantization (ISOLET surrogate)",
        "dimensions",
        "accuracy %",
    );
    for &dim in &dims {
        for scheme in schemes {
            let model = wb.model_at(dim, scheme)?;
            let acc = wb.accuracy_at(&model, dim, scheme)?;
            fig_a.push(scheme.label(), dim as f64, acc * 100.0);
        }
    }
    // Full-precision reference at 10k (the paper's baseline for the
    // "only 3% below" comparison).
    let baseline = wb.baseline_accuracy(master_dim)?;
    fig_a.emit(json_flag());
    println!("full-precision 10k baseline: {:.1}%", baseline * 100.0);

    let bipolar_10k = fig_a
        .points
        .iter()
        .find(|p| p.series == "bipolar" && p.x == 10_000.0)
        .map(|p| p.y)
        .unwrap_or(0.0);
    println!(
        "bipolar @10k: {bipolar_10k:.1}% (paper: 93.1%, vs 88.1% when classes \
         are quantized too [17])"
    );

    let mut fig_b = Figure::new(
        "fig5b",
        "l2 sensitivity vs dimensions (Eq. 14)",
        "dimensions",
        "sensitivity",
    );
    for &dim in &dims {
        let s = Sensitivity::new(features, dim);
        for scheme in schemes {
            fig_b.push(scheme.label(), dim as f64, s.l2_quantized(scheme));
        }
    }
    fig_b.emit(json_flag());

    let s_full = Sensitivity::new(features, master_dim).l2_full();
    let s_pruned_ternary = Sensitivity::new(features, 1_000).l2_quantized(QuantScheme::Ternary);
    println!(
        "full-precision Δf @10k = {s_full:.0} (paper: 2484); \
         ternary @1k = {s_pruned_ternary:.1} (paper: 22.3 with biased thresholds)"
    );
    Ok(())
}
