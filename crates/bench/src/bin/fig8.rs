//! Fig. 8 — differentially private training: the optimal ε, the
//! dimension trade-off, and the effect of training-set size.
//!
//! (a)–(c) For each dataset and each candidate ε (δ = 10⁻⁵), sweep the
//! kept dimensionality: the model is trained with ternary-quantized
//! encodings at 10k dims, pruned least-effectual-first to the target
//! dimension, retrained, and perturbed with Gaussian noise of std
//! `Δf(kept)·σ(ε, δ)` (Eq. 8, 14). Fewer dimensions mean less noise
//! (Δf ∝ √D) but also less capacity — the inverted-U the paper reads the
//! optimum from (e.g. 7,000 dims for FACE at ε = 1).
//!
//! (d) Accuracy of the private FACE model vs training-set size: more data
//! raises class-vector variance, burying the same noise (the paper's
//! "vital insight").
//!
//! ## Sensitivity calibration
//!
//! By default this harness uses the **per-dimension** sensitivity
//! reading (noise std `σ·max|k|` per class dimension), which is the only
//! calibration under which the paper's reported accuracies are
//! achievable; pass `--strict-l2` for the formally correct vector-ℓ2
//! calibration of Eq. (8)+(14), under which the noise overwhelms the
//! model (see EXPERIMENTS.md for the quantitative argument).

use privehd_bench::report::json_flag;
use privehd_bench::{Figure, Workbench};
use privehd_core::prelude::*;
use privehd_core::{HdError, Hypervector};
use privehd_data::surrogates;
use privehd_privacy::{GaussianMechanism, Mechanism, PrivacyBudget, Sensitivity, SensitivityMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let master_dim = 10_000;
    let json = json_flag();
    let mode = if std::env::args().any(|a| a == "--strict-l2") {
        SensitivityMode::VectorL2
    } else {
        SensitivityMode::PerDimension
    };
    println!("sensitivity calibration: {mode:?}\n");

    // (a)–(c): per-dataset ε sweeps, matching the paper's panels.
    // Training-set sizes approach the real datasets' (ISOLET has 238
    // train samples per class); Fig. 8(d)'s insight is that data volume
    // buries the noise, so the DP panels need realistic sizes.
    let panels: Vec<(&str, privehd_data::Dataset, Vec<f64>)> = vec![
        ("fig8a", surrogates::isolet(238, 15, 0), vec![8.0, 9.0]),
        ("fig8b", surrogates::face(300, 60, 0), vec![0.5, 1.0]),
        ("fig8c", surrogates::mnist(300, 40, 0), vec![1.0, 2.0]),
    ];
    for (id, ds, epsilons) in panels {
        let name = ds.name().to_owned();
        let wb = Workbench::new(ds, master_dim, 1)?;
        let mut fig = Figure::new(
            id,
            format!("private accuracy vs dimensions ({name})"),
            "dimensions",
            "accuracy %",
        );
        for &eps in &epsilons {
            let budget = PrivacyBudget::with_paper_delta(eps)?;
            for keep in (1..=10).map(|i| i * 1_000) {
                let acc = private_accuracy_at(&wb, master_dim, keep, budget, mode, 99)?;
                fig.push(format!("eps {eps}"), keep as f64, acc * 100.0);
            }
        }
        // Report the per-ε optimum like the paper does.
        for &eps in &epsilons {
            let series = format!("eps {eps}");
            if let Some(best) = fig
                .points
                .iter()
                .filter(|p| p.series == series)
                .max_by(|a, b| a.y.partial_cmp(&b.y).expect("finite"))
            {
                println!(
                    "{name} ε={eps}: best {:.1}% at {} dims",
                    best.y, best.x as usize
                );
            }
        }
        fig.emit(json);
    }

    // (d): training-set size sweep for the private FACE model.
    let mut fig_d = Figure::new(
        "fig8d",
        "private accuracy vs training-set size (FACE surrogate, eps=1, 7k dims)",
        "dataset fraction",
        "accuracy %",
    );
    let face_full = surrogates::face(300, 60, 0);
    let budget = PrivacyBudget::with_paper_delta(1.0)?;
    for frac in [0.1, 0.25, 0.5, 0.75, 1.0] {
        let ds = face_full.subsample_train(frac, 3);
        let wb = Workbench::new(ds, master_dim, 1)?;
        let acc = private_accuracy_at(&wb, master_dim, 7_000, budget, mode, 99)?;
        fig_d.push("FACE", frac, acc * 100.0);
    }
    fig_d.emit(json);
    Ok(())
}

/// One Fig. 8 point: ternary encodings, prune 10k→`keep`, retrain, add
/// `Δf(keep)·σ` Gaussian noise, evaluate with matching queries.
fn private_accuracy_at(
    wb: &Workbench,
    master_dim: usize,
    keep: usize,
    budget: PrivacyBudget,
    mode: SensitivityMode,
    noise_seed: u64,
) -> Result<f64, HdError> {
    let scheme = QuantScheme::Ternary;
    let train = wb.train_set_at(master_dim, scheme);
    let mut model = HdModel::train(wb.dataset().num_classes(), master_dim, &train)?;

    let mask = if keep < master_dim {
        let mask = PruneMask::select(&model, master_dim - keep, PruneStrategy::LeastEffectual)?;
        model.apply_mask(&mask)?;
        model.retrain_masked(
            &train,
            &mask,
            &RetrainConfig {
                epochs: 2,
                ..RetrainConfig::default()
            },
        )?;
        Some(mask)
    } else {
        None
    };

    // Gaussian mechanism at the pruned sensitivity.
    let sens = Sensitivity::new(wb.dataset().features(), keep);
    let delta_f = match mode {
        SensitivityMode::VectorL2 => sens.l2_quantized(scheme),
        SensitivityMode::PerDimension => sens.per_dimension(scheme),
    };
    let mut mech = GaussianMechanism::new(budget, noise_seed);
    let mut noise = mech.noise_for_classes(model.num_classes(), master_dim, delta_f)?;
    if let Some(m) = &mask {
        for n in &mut noise {
            m.apply(n)?;
        }
    }
    model.add_class_noise(&noise)?;

    // Queries: same quantization and mask as training.
    let test: Vec<(Hypervector, usize)> = wb
        .test_set_at(master_dim, scheme)
        .into_iter()
        .map(|(mut h, y)| {
            if let Some(m) = &mask {
                m.apply(&mut h).expect("same dimension");
            }
            (h, y)
        })
        .collect();
    model.accuracy(&test)
}
