//! Fig. 4 — retraining recovers the accuracy lost to pruning.
//!
//! For each (dimension, levels) configuration the model is trained at
//! 10,000 dimensions, pruned down to the target dimension
//! (least-effectual-first, perpetually zero), then retrained for up to 20
//! epochs with Eq. (5); test accuracy is recorded per epoch. The paper's
//! headline observation — 1–2 iterations suffice to reach the maximum
//! accuracy — reproduces as immediate convergence of the trace. The
//! *magnitude* of the recovery differs from the paper: the synthetic
//! surrogate's pruning loss is noise-dominated (bundled prototypes are
//! already near-optimal for isotropic Gaussian clusters), whereas real
//! ISOLET underfits at bundling so Eq. (5) has margin to reclaim. See
//! EXPERIMENTS.md.

use privehd_bench::report::json_flag;
use privehd_bench::Figure;
use privehd_core::prelude::*;
use privehd_core::{HdError, Hypervector};
use privehd_data::{surrogates, Dataset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let master_dim = 10_000;
    let ds = surrogates::isolet(30, 10, 0);
    let mut fig = Figure::new(
        "fig4",
        "retraining to recover pruning loss (ISOLET surrogate)",
        "epoch",
        "test accuracy %",
    );
    // (kept dims, feature levels) — the paper's legend.
    let configs: [(usize, usize); 5] = [
        (10_000, 100),
        (1_000, 50),
        (1_000, 100),
        (500, 50),
        (500, 100),
    ];
    for (keep, levels) in configs {
        let series = format!("{}K, L{}", keep as f64 / 1_000.0, levels);
        let trace = retrain_trace(&ds, master_dim, keep, levels, 20)?;
        for (epoch, acc) in trace.iter().enumerate() {
            fig.push(&series, epoch as f64, acc * 100.0);
        }
        let recover_epoch = trace
            .iter()
            .position(|a| *a >= trace.last().copied().unwrap_or(0.0) - 0.005)
            .unwrap_or(0);
        println!(
            "{series}: {:.1}% -> {:.1}% (≈ recovered by epoch {recover_epoch})",
            trace.first().copied().unwrap_or(0.0) * 100.0,
            trace.last().copied().unwrap_or(0.0) * 100.0,
        );
    }
    fig.emit(json_flag());
    Ok(())
}

/// Trains at `master_dim`, prunes to `keep` dims, retrains epoch-by-epoch
/// and returns the test-accuracy trace (entry 0 = before retraining).
fn retrain_trace(
    ds: &Dataset,
    master_dim: usize,
    keep: usize,
    levels: usize,
    epochs: usize,
) -> Result<Vec<f64>, HdError> {
    let encoder = ScalarEncoder::new(
        EncoderConfig::new(ds.features(), master_dim)
            .with_levels(levels)
            .with_seed(7),
    )?;
    let train_inputs: Vec<Vec<f64>> = ds.train().iter().map(|s| s.features.clone()).collect();
    let test_inputs: Vec<Vec<f64>> = ds.test().iter().map(|s| s.features.clone()).collect();
    let train_hv = encoder.encode_batch(&train_inputs)?;
    let test_hv = encoder.encode_batch(&test_inputs)?;
    let train: Vec<(Hypervector, usize)> = train_hv
        .into_iter()
        .zip(ds.train())
        .map(|(h, s)| (h, s.label))
        .collect();
    let mut model = HdModel::train(ds.num_classes(), master_dim, &train)?;

    // Prune (perpetually) and mask both splits.
    let mask = if keep < master_dim {
        let mask = PruneMask::select(&model, master_dim - keep, PruneStrategy::LeastEffectual)?;
        model.apply_mask(&mask)?;
        Some(mask)
    } else {
        None
    };
    let apply = |h: Hypervector| -> Hypervector {
        match &mask {
            Some(m) => {
                let mut x = h;
                m.apply(&mut x).expect("same dimension");
                x
            }
            None => h,
        }
    };
    let train_m: Vec<(Hypervector, usize)> =
        train.into_iter().map(|(h, y)| (apply(h), y)).collect();
    let test_m: Vec<(Hypervector, usize)> = test_hv
        .into_iter()
        .zip(ds.test())
        .map(|(h, s)| (apply(h), s.label))
        .collect();

    let mut trace = vec![model.accuracy(&test_m)?];
    let one_epoch = RetrainConfig {
        epochs: 1,
        target_accuracy: 1.0,
        stop_when_converged: false,
    };
    for _ in 0..epochs {
        model.retrain(&train_m, &one_epoch)?;
        trace.push(model.accuracy(&test_m)?);
    }
    Ok(trace)
}
