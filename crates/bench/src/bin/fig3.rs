//! Fig. 3 — impact of increasing (a) and reducing (b) effectual
//! dimensions on the retrieved prediction information.
//!
//! (a) restores dimensions of a trained class hypervector starting from
//! the least-effectual (close-to-zero) ones and tracks what fraction of
//! the full dot-product is retrieved — the first thousands of
//! close-to-zero dimensions carry only a small share of the information.
//!
//! (b) prunes the least-effectual dimensions and tracks the information
//! retained for the correct class (A) and the runner-up (B): both decay
//! slowly at first, and the class ranking is preserved.
//!
//! `--random` adds the random-pruning ablation (accuracy after pruning,
//! least-effectual vs random selection).

use privehd_bench::report::json_flag;
use privehd_bench::{Figure, Workbench};
use privehd_core::prelude::*;
use privehd_core::prune::information_curve;
use privehd_data::surrogates;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dim = 10_000;
    let wb = Workbench::new(surrogates::isolet(30, 10, 0), dim, 1)?;
    let model = wb.model_at(dim, QuantScheme::Full)?;

    // A confidently-classified query: class A = its true class,
    // class B = the runner-up.
    let (query, label) = &wb.test_encodings()[0];
    let pred = model.predict(query)?;
    let class_a = *label;
    let class_b = pred
        .scores
        .iter()
        .enumerate()
        .filter(|(c, _)| *c != class_a)
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(c, _)| c)
        .expect("at least two classes");

    // Fig. 3(a): restore least-effectual-first.
    let steps_a: Vec<usize> = (0..=10).map(|i| i * 1_000).collect();
    let pts_a = information_curve(&model, query, &steps_a, true)?;
    let mut fig_a = Figure::new(
        "fig3a",
        "information retrieved vs dimensions restored (least-effectual first)",
        "dimensions restored",
        "fraction of full dot-product",
    );
    for p in &pts_a {
        fig_a.push("class A", p.dimensions as f64, p.information[class_a]);
    }
    fig_a.emit(json_flag());

    // Fig. 3(b): prune least-effectual-first, classes A and B.
    let steps_b: Vec<usize> = (0..=12).map(|i| i * 500).collect();
    let pts_b = information_curve(&model, query, &steps_b, false)?;
    let mut fig_b = Figure::new(
        "fig3b",
        "information retained vs dimensions pruned (correct class A, runner-up B)",
        "dimensions pruned",
        "fraction of full dot-product",
    );
    for p in &pts_b {
        fig_b.push("class A", p.dimensions as f64, p.information[class_a]);
        fig_b.push("class B", p.dimensions as f64, p.information[class_b]);
    }
    fig_b.emit(json_flag());

    // Headline checks mirroring the paper's reading of the figure.
    let restored_6k = pts_a
        .iter()
        .find(|p| p.dimensions == 6_000)
        .map(|p| p.information[class_a])
        .unwrap_or(0.0);
    println!(
        "first 6,000 least-effectual dimensions retrieve {:.0}% of the information \
         (paper: ~20%)",
        restored_6k * 100.0
    );
    let rank_kept = pts_b.iter().all(|p| {
        // Ranking preserved while pruning up to 6k dims.
        p.information[class_a] * pred.scores[class_a].abs()
            >= p.information[class_b] * pred.scores[class_b].abs()
            || p.dimensions > 6_000
    });
    println!("class ranking preserved under pruning: {rank_kept}");

    if std::env::args().any(|a| a == "--random") {
        ablation_random_pruning(&wb, dim)?;
    }
    Ok(())
}

/// Ablation: accuracy after pruning, least-effectual vs random selection.
fn ablation_random_pruning(wb: &Workbench, dim: usize) -> Result<(), HdError> {
    let mut fig = Figure::new(
        "fig3-ablation",
        "accuracy after pruning: least-effectual vs random selection",
        "dimensions pruned",
        "accuracy %",
    );
    let test = wb.test_set_at(dim, QuantScheme::Full);
    for pruned in [2_000usize, 5_000, 8_000] {
        for (label, strategy) in [
            ("least-effectual", PruneStrategy::LeastEffectual),
            ("random", PruneStrategy::Random { seed: 11 }),
        ] {
            let mut model = wb.model_at(dim, QuantScheme::Full)?;
            let mask = PruneMask::select(&model, pruned, strategy)?;
            model.apply_mask(&mask)?;
            let masked_test: Vec<_> = test
                .iter()
                .map(|(h, y)| {
                    let mut m = h.clone();
                    mask.apply(&mut m).expect("same dim");
                    (m, *y)
                })
                .collect();
            let acc = model.accuracy(&masked_test)?;
            fig.push(label, pruned as f64, acc * 100.0);
        }
    }
    fig.emit(json_flag());
    Ok(())
}
