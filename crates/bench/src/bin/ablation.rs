//! Ablation studies for the design choices DESIGN.md §7 calls out.
//!
//! 1. **Classes full-precision vs classes quantized** — the Fig. 5(a)
//!    93.1%-vs-88.1% argument against prior work \[17\], plus the fully
//!    binary associative-memory extreme.
//! 2. **Plain bundling vs Eq. (5) retraining vs online
//!    similarity-weighted training** — how much the training rule
//!    matters before privacy even enters.
//! 3. **Gaussian (ℓ2) vs Laplace (ℓ1) mechanism** — the §III-B argument
//!    for (ε, δ)-DP: the ℓ1 sensitivity forces a catastrophically larger
//!    noise scale.
//! 4. **Least-effectual vs random pruning** (also available via
//!    `fig3 --random`).

use privehd_bench::report::{format_num, json_flag, print_table};
use privehd_bench::{Figure, Workbench};
use privehd_core::binary_model::{BinaryHdModel, QuantizedClassModel};
use privehd_core::online::{train_online, OnlineConfig};
use privehd_core::prelude::*;
use privehd_data::surrogates;
use privehd_privacy::{GaussianMechanism, LaplaceMechanism, Mechanism, PrivacyBudget, Sensitivity};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let json = json_flag();
    let dim = 8_000;
    let wb = Workbench::new(surrogates::isolet(30, 12, 0), dim, 1)?;

    class_quantization_ablation(&wb, dim, json)?;
    training_rule_ablation(&wb, dim)?;
    mechanism_ablation(&wb)?;
    Ok(())
}

/// Ablation 1: where the quantization is applied.
fn class_quantization_ablation(wb: &Workbench, dim: usize, json: bool) -> Result<(), HdError> {
    let mut fig = Figure::new(
        "ablation-classes",
        "quantize encodings only (Prive-HD) vs classes too ([17]) vs fully binary",
        "variant",
        "accuracy %",
    );
    // Queries are bipolar in every variant (the offloaded form).
    let test_q = wb.test_set_at(dim, QuantScheme::Bipolar);

    // (a) Prive-HD: bipolar encodings, full-precision classes.
    let prive = wb.model_at(dim, QuantScheme::Bipolar)?;
    let acc_prive = prive.accuracy(&test_q)?;
    fig.push("accuracy", 0.0, acc_prive * 100.0);

    // (b) Prior work: quantize the class hypervectors as well.
    let prior = QuantizedClassModel::from_model(&prive, QuantScheme::Bipolar);
    let acc_prior = prior.accuracy(&test_q)?;
    fig.push("accuracy", 1.0, acc_prior * 100.0);

    // (c) Fully binary associative memory (Hamming inference).
    let binary = BinaryHdModel::from_model(&prive)?;
    let acc_binary = binary.accuracy(&test_q)?;
    fig.push("accuracy", 2.0, acc_binary * 100.0);

    println!("-- where the quantization is applied (bipolar queries) --");
    print_table(&[
        vec![
            "variant".into(),
            "accuracy %".into(),
            "class bits/dim".into(),
        ],
        vec![
            "encodings only (Prive-HD)".into(),
            format!("{:.1}", acc_prive * 100.0),
            "64".into(),
        ],
        vec![
            "classes too [17]".into(),
            format!("{:.1}", acc_prior * 100.0),
            "2".into(),
        ],
        vec![
            "fully binary".into(),
            format!("{:.1}", acc_binary * 100.0),
            "1".into(),
        ],
    ]);
    println!(
        "paper: 93.1% vs 88.1% — keeping classes full precision wins; \
         measured gap: {:.1}%\n",
        (acc_prive - acc_prior) * 100.0
    );
    fig.emit(json);
    Ok(())
}

/// Ablation 2: the training rule.
fn training_rule_ablation(wb: &Workbench, dim: usize) -> Result<(), HdError> {
    let train = wb.train_set_at(dim, QuantScheme::Full);
    let test = wb.test_set_at(dim, QuantScheme::Full);
    let classes = wb.dataset().num_classes();

    let bundled = HdModel::train(classes, dim, &train)?;
    let acc_bundled = bundled.accuracy(&test)?;

    let mut retrained = bundled.clone();
    retrained.retrain(&train, &RetrainConfig::default())?;
    let acc_retrained = retrained.accuracy(&test)?;

    let (online, _) = train_online(classes, dim, &train, &OnlineConfig::default())?;
    let acc_online = online.accuracy(&test)?;

    println!("-- training rule (full precision) --");
    print_table(&[
        vec!["rule".into(), "test accuracy %".into()],
        vec![
            "bundling (Eq. 3)".into(),
            format!("{:.1}", acc_bundled * 100.0),
        ],
        vec![
            "+ retraining (Eq. 5)".into(),
            format!("{:.1}", acc_retrained * 100.0),
        ],
        vec![
            "online (similarity-weighted)".into(),
            format!("{:.1}", acc_online * 100.0),
        ],
    ]);
    println!();
    Ok(())
}

/// Ablation 3: the mechanism family and its required noise scale.
fn mechanism_ablation(wb: &Workbench) -> Result<(), HdError> {
    let features = wb.dataset().features();
    let sens = Sensitivity::new(features, 10_000);
    let budget = PrivacyBudget::with_paper_delta(1.0).expect("paper delta is valid");
    let gaussian = GaussianMechanism::new(budget, 1);
    let laplace = LaplaceMechanism::new(1.0, 1);

    let g_scale = gaussian.noise_scale(sens.l2_full());
    let l_scale = laplace.noise_scale(sens.l1_full());
    println!("-- mechanism family at eps = 1 (full-precision encoding, 10k dims) --");
    print_table(&[
        vec![
            "mechanism".into(),
            "sensitivity".into(),
            "noise scale/dim".into(),
        ],
        vec![
            "Gaussian (l2, delta=1e-5)".into(),
            format_num(sens.l2_full()),
            format_num(g_scale),
        ],
        vec![
            "Laplace (l1, pure eps)".into(),
            format_num(sens.l1_full()),
            format_num(l_scale),
        ],
    ]);
    println!(
        "the l1 route needs a {:.0}x larger noise scale — the paper's reason \
         for targeting (eps, delta)-DP (§III-B)",
        l_scale / g_scale
    );
    Ok(())
}
