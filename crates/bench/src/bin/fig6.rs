//! Fig. 6 — inference quantization and dimension masking: accuracy vs
//! PSNR of the reconstructed input (MNIST surrogate).
//!
//! The edge device encodes, 1-bit-quantizes and masks the query before
//! offloading; the cloud-side model is full precision and untouched
//! (§III-C). The figure tracks prediction accuracy as fewer dimensions
//! stay unmasked, and the PSNR an adversary achieves when reconstructing
//! the input from the offloaded vector. Prints ASCII art of the
//! adversary's view at each obfuscation level.

use privehd_bench::report::json_flag;
use privehd_bench::{Figure, Workbench};
use privehd_core::prelude::*;
use privehd_data::{digits, surrogates};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dim = 10_000;
    let ds = surrogates::mnist(25, 10, 0);
    let wb = Workbench::new(ds, dim, 1)?;
    // Full-precision model, never retrained or accessed by the defence.
    let model = wb.model_at(dim, QuantScheme::Full)?;
    let baseline = wb.accuracy_at(&model, dim, QuantScheme::Full)?;

    let mut fig = Figure::new(
        "fig6",
        "inference quantization + masking: accuracy and PSNR (MNIST surrogate)",
        "unmasked dimensions (x1000)",
        "accuracy % / PSNR dB",
    );

    let decoder = Decoder::new(wb.encoder().item_memory().clone());
    let victim = &wb.dataset().test()[0];
    let victim_enc = wb.encoder().encode(&victim.features)?;
    let full_norm = victim_enc.l2_norm();

    println!(
        "baseline (full-precision queries): {:.1}%\n",
        baseline * 100.0
    );
    let mask_counts: Vec<usize> = (0..=9).map(|i| i * 1_000).collect();
    for &masked in &mask_counts {
        let unmasked = dim - masked;
        let ob = Obfuscator::new(
            dim,
            ObfuscateConfig::new(QuantScheme::Bipolar)
                .with_masked_dims(masked)
                .with_seed(5),
        )?;
        // Accuracy: obfuscated queries against the intact model.
        let test: Vec<_> = wb
            .test_encodings()
            .iter()
            .map(|(h, y)| Ok((ob.obfuscate(h)?, *y)))
            .collect::<Result<Vec<_>, HdError>>()?;
        let acc = model.accuracy(&test)?;
        // Adversary: reconstruct the victim from the offloaded vector.
        let sent = ob.obfuscate(&victim_enc)?;
        let rec = decoder.decode_rescaled(&sent, full_norm)?;
        let p = psnr(&victim.features, &rec.features_clamped())?;
        fig.push("accuracy", unmasked as f64 / 1_000.0, acc * 100.0);
        fig.push("psnr_db", unmasked as f64 / 1_000.0, p);
    }
    fig.emit(json_flag());

    // The visual comparison of Fig. 6.
    println!(
        "adversary's reconstructions (victim digit = {}):",
        victim.label
    );
    let clean_rec = decoder.decode(&victim_enc)?;
    let stages: Vec<(&str, Vec<f64>)> = vec![
        ("original", victim.features.clone()),
        ("decoded (no defence)", clean_rec.features_clamped()),
        (
            "quantized",
            reconstruct(&decoder, &victim_enc, 0, full_norm)?,
        ),
        (
            "quantized + 5k mask",
            reconstruct(&decoder, &victim_enc, 5_000, full_norm)?,
        ),
        (
            "quantized + 9k mask",
            reconstruct(&decoder, &victim_enc, 9_000, full_norm)?,
        ),
    ];
    for (name, img) in &stages {
        let p = psnr(&victim.features, img)?;
        println!("--- {name}: PSNR {p:.1} dB ---");
        print!("{}", digits::to_ascii(img));
        println!();
    }
    Ok(())
}

fn reconstruct(
    decoder: &Decoder,
    victim_enc: &Hypervector,
    masked: usize,
    full_norm: f64,
) -> Result<Vec<f64>, HdError> {
    let ob = Obfuscator::new(
        victim_enc.dim(),
        ObfuscateConfig::new(QuantScheme::Bipolar)
            .with_masked_dims(masked)
            .with_seed(5),
    )?;
    let sent = ob.obfuscate(victim_enc)?;
    Ok(decoder
        .decode_rescaled(&sent, full_norm)?
        .features_clamped())
}
