//! Fig. 9 — privacy-aware inference across all three datasets.
//!
//! (a) accuracy when only the offloaded query is 1-bit quantized (the
//! model stays full precision), sweeping dimensionality — the paper
//! reports an average 0.85% drop at 10k dimensions.
//!
//! (b) normalized reconstruction MSE as more dimensions are masked on
//! top of quantization — information loss grows while (for ISOLET and
//! FACE) accuracy degrades only mildly up to ~6k masked dims; MNIST is
//! more fragile (the paper prunes at most ~1k there).

use privehd_bench::report::json_flag;
use privehd_bench::{Figure, Workbench};
use privehd_core::prelude::*;
use privehd_data::surrogates;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let master_dim = 10_000;
    let json = json_flag();
    let sets = vec![
        ("ISOLET", surrogates::isolet(30, 10, 0)),
        ("FACE", surrogates::face(60, 25, 0)),
        ("MNIST", surrogates::mnist(40, 15, 0)),
    ];

    let mut fig_a = Figure::new(
        "fig9a",
        "accuracy with 1-bit quantized queries vs dimensions (full-precision classes)",
        "dimensions",
        "accuracy %",
    );
    let mut fig_b = Figure::new(
        "fig9b",
        "normalized reconstruction MSE vs masked dimensions",
        "masked dimensions",
        "MSE (normalized to unquantized decode)",
    );
    let mut fig_b_acc = Figure::new(
        "fig9b-acc",
        "accuracy vs masked dimensions (quantized queries)",
        "masked dimensions",
        "accuracy %",
    );

    for (name, ds) in sets {
        let wb = Workbench::new(ds, master_dim, 1)?;
        let model_full = wb.model_at(master_dim, QuantScheme::Full)?;
        let baseline = wb.accuracy_at(&model_full, master_dim, QuantScheme::Full)?;

        // (a) dimensionality sweep with bipolar queries.
        for dim in (2..=10).map(|i| i * 1_000) {
            let model = wb.model_at(dim, QuantScheme::Full)?;
            let acc = wb.accuracy_at(&model, dim, QuantScheme::Bipolar)?;
            fig_a.push(name, dim as f64, acc * 100.0);
        }
        let acc_q_10k = wb.accuracy_at(&model_full, master_dim, QuantScheme::Bipolar)?;
        println!(
            "{name}: baseline {:.1}%, quantized queries {:.1}% (drop {:.2}%)",
            baseline * 100.0,
            acc_q_10k * 100.0,
            (baseline - acc_q_10k) * 100.0
        );

        // (b) masking sweep: normalized MSE of the adversary's decode and
        // the accuracy cost.
        let decoder = Decoder::new(wb.encoder().item_memory().clone());
        let probes: Vec<usize> = (0..wb.dataset().test().len()).step_by(3).collect();
        let mse_reference = mean_decode_mse(&wb, &decoder, &probes, None)?;
        for masked in (0..=8).map(|i| i * 1_000) {
            let ob = Obfuscator::new(
                master_dim,
                ObfuscateConfig::new(QuantScheme::Bipolar)
                    .with_masked_dims(masked)
                    .with_seed(5),
            )?;
            let mse_obf = mean_decode_mse(&wb, &decoder, &probes, Some(&ob))?;
            fig_b.push(name, masked as f64, mse_obf / mse_reference);

            let test: Vec<_> = wb
                .test_encodings()
                .iter()
                .map(|(h, y)| Ok((ob.obfuscate(h)?, *y)))
                .collect::<Result<Vec<_>, HdError>>()?;
            let acc = model_full.accuracy(&test)?;
            fig_b_acc.push(name, masked as f64, acc * 100.0);
        }
    }
    fig_a.emit(json);
    fig_b.emit(json);
    fig_b_acc.emit(json);
    Ok(())
}

/// Mean reconstruction MSE over the probe test samples, decoding either
/// the raw encoding (`None`) or its obfuscated form.
fn mean_decode_mse(
    wb: &Workbench,
    decoder: &Decoder,
    probe_indices: &[usize],
    obfuscator: Option<&Obfuscator>,
) -> Result<f64, HdError> {
    let mut acc = 0.0;
    for &i in probe_indices {
        let sample = &wb.dataset().test()[i];
        let (enc, _) = &wb.test_encodings()[i];
        let rec = match obfuscator {
            Some(ob) => decoder.decode_rescaled(&ob.obfuscate(enc)?, enc.l2_norm())?,
            None => decoder.decode(enc)?,
        };
        acc += mse(&sample.features, &rec.features_clamped())?;
    }
    Ok(acc / probe_indices.len().max(1) as f64)
}
