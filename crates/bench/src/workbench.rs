//! Encode-once / evaluate-many experiment state.
//!
//! Almost every paper figure sweeps hypervector dimensionality and/or
//! quantization scheme over a fixed dataset. Re-encoding per sweep point
//! would dominate the runtime, so the workbench encodes each split once
//! at the maximum dimensionality and derives every sweep point from those
//! encodings:
//!
//! * **dimension sweeps** truncate to the first `D` components — valid
//!   because encoded dimensions are i.i.d. (each comes from independent
//!   base-hypervector bits);
//! * **quantization sweeps** re-quantize the stored full-precision
//!   encodings;
//! * **training** is then just bundling, which is cheap.

use privehd_core::prelude::*;
use privehd_core::{HdError, Hypervector};
use privehd_data::Dataset;

/// Shared experiment state for one dataset at one master dimensionality.
#[derive(Debug)]
pub struct Workbench {
    dataset: Dataset,
    encoder: ScalarEncoder,
    train_enc: Vec<(Hypervector, usize)>,
    test_enc: Vec<(Hypervector, usize)>,
}

impl Workbench {
    /// Encodes both splits of `dataset` at dimensionality `dim` (the
    /// maximum any sweep will request).
    ///
    /// # Errors
    ///
    /// Propagates encoder construction/encoding errors.
    pub fn new(dataset: Dataset, dim: usize, seed: u64) -> Result<Self, HdError> {
        let encoder = ScalarEncoder::new(
            EncoderConfig::new(dataset.features(), dim)
                .with_levels(100)
                .with_seed(seed),
        )?;
        let train_inputs: Vec<Vec<f64>> =
            dataset.train().iter().map(|s| s.features.clone()).collect();
        let test_inputs: Vec<Vec<f64>> =
            dataset.test().iter().map(|s| s.features.clone()).collect();
        let train_hv = encoder.encode_batch(&train_inputs)?;
        let test_hv = encoder.encode_batch(&test_inputs)?;
        let train_enc = train_hv
            .into_iter()
            .zip(dataset.train())
            .map(|(h, s)| (h, s.label))
            .collect();
        let test_enc = test_hv
            .into_iter()
            .zip(dataset.test())
            .map(|(h, s)| (h, s.label))
            .collect();
        Ok(Self {
            dataset,
            encoder,
            train_enc,
            test_enc,
        })
    }

    /// The dataset under test.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The encoder (public basis).
    pub fn encoder(&self) -> &ScalarEncoder {
        &self.encoder
    }

    /// Master dimensionality.
    pub fn dim(&self) -> usize {
        self.encoder.dim()
    }

    /// Full-precision training-split encodings at master dimension.
    pub fn train_encodings(&self) -> &[(Hypervector, usize)] {
        &self.train_enc
    }

    /// Full-precision test-split encodings at master dimension.
    pub fn test_encodings(&self) -> &[(Hypervector, usize)] {
        &self.test_enc
    }

    /// Truncates an encoding to its first `dim` components.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero or exceeds the stored dimensionality.
    pub fn truncate(h: &Hypervector, dim: usize) -> Hypervector {
        assert!(dim > 0 && dim <= h.dim(), "invalid truncation dimension");
        Hypervector::from_vec(h.as_slice()[..dim].to_vec())
    }

    /// Training encodings truncated to `dim` and quantized with `scheme`.
    pub fn train_set_at(&self, dim: usize, scheme: QuantScheme) -> Vec<(Hypervector, usize)> {
        self.train_enc
            .iter()
            .map(|(h, y)| (scheme.quantize_adaptive(&Self::truncate(h, dim)), *y))
            .collect()
    }

    /// Test encodings truncated to `dim` and quantized with `scheme`.
    pub fn test_set_at(&self, dim: usize, scheme: QuantScheme) -> Vec<(Hypervector, usize)> {
        self.test_enc
            .iter()
            .map(|(h, y)| (scheme.quantize_adaptive(&Self::truncate(h, dim)), *y))
            .collect()
    }

    /// Trains a model at `dim` with encoding quantization `scheme`
    /// (Eq. 13: encodings are quantized, classes accumulate in full
    /// precision).
    ///
    /// # Errors
    ///
    /// Propagates training errors.
    pub fn model_at(&self, dim: usize, scheme: QuantScheme) -> Result<HdModel, HdError> {
        HdModel::train(
            self.dataset.num_classes(),
            dim,
            &self.train_set_at(dim, scheme),
        )
    }

    /// Accuracy of `model` when queries are truncated to `dim` and
    /// quantized with `query_scheme`.
    ///
    /// # Errors
    ///
    /// Propagates prediction errors.
    pub fn accuracy_at(
        &self,
        model: &HdModel,
        dim: usize,
        query_scheme: QuantScheme,
    ) -> Result<f64, HdError> {
        model.accuracy(&self.test_set_at(dim, query_scheme))
    }

    /// The non-private full-precision baseline accuracy at `dim`.
    ///
    /// # Errors
    ///
    /// Propagates training/prediction errors.
    pub fn baseline_accuracy(&self, dim: usize) -> Result<f64, HdError> {
        let model = self.model_at(dim, QuantScheme::Full)?;
        self.accuracy_at(&model, dim, QuantScheme::Full)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privehd_data::surrogates;

    fn bench() -> Workbench {
        Workbench::new(surrogates::face(20, 10, 1), 2_000, 8).unwrap()
    }

    #[test]
    fn encodes_both_splits() {
        let wb = bench();
        assert_eq!(wb.train_encodings().len(), 40);
        assert_eq!(wb.test_encodings().len(), 20);
        assert_eq!(wb.dim(), 2_000);
    }

    #[test]
    fn truncation_is_a_prefix() {
        let wb = bench();
        let (h, _) = &wb.train_encodings()[0];
        let t = Workbench::truncate(h, 100);
        assert_eq!(t.dim(), 100);
        assert_eq!(&h.as_slice()[..100], t.as_slice());
    }

    #[test]
    #[should_panic(expected = "invalid truncation")]
    fn truncation_beyond_dim_panics() {
        let wb = bench();
        let (h, _) = &wb.train_encodings()[0];
        let _ = Workbench::truncate(h, 4_000);
    }

    #[test]
    fn baseline_beats_chance_and_quantized_is_close() {
        let wb = bench();
        let base = wb.baseline_accuracy(2_000).unwrap();
        assert!(base > 0.7, "baseline = {base}");
        let model_q = wb.model_at(2_000, QuantScheme::Bipolar).unwrap();
        let acc_q = wb
            .accuracy_at(&model_q, 2_000, QuantScheme::Bipolar)
            .unwrap();
        assert!(
            base - acc_q < 0.15,
            "bipolar drop too big: {base} -> {acc_q}"
        );
    }

    #[test]
    fn smaller_dim_is_usable() {
        let wb = bench();
        let model = wb.model_at(500, QuantScheme::Ternary).unwrap();
        let acc = wb.accuracy_at(&model, 500, QuantScheme::Ternary).unwrap();
        assert!(acc > 0.6, "acc = {acc}");
    }
}
