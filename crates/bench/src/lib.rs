//! # privehd-bench
//!
//! Experiment harness for the Prive-HD reproduction: one binary per paper
//! table/figure (see `src/bin/fig*.rs`, `src/bin/table1.rs`) plus
//! Criterion micro-benchmarks (`benches/`).
//!
//! The library half hosts the shared plumbing:
//!
//! * [`workbench`] — encode-once/evaluate-many experiment state. Every
//!   figure sweeps dimensionality and quantization over the *same*
//!   encodings, exploiting that hypervector dimensions are i.i.d. so a
//!   `D`-dimension model is a prefix-truncation of a 10k-dimension one.
//! * [`report`] — aligned-column table printing and JSON record output,
//!   so every harness binary emits both a human-readable table and a
//!   machine-readable line per row.

// No unsafe: every unsafe site in the workspace lives in privehd-core
// under the analyze unsafe-audit ledger (see docs/ANALYSIS.md).
#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod report;
pub mod workbench;

pub use report::{print_table, Figure, SeriesPoint};
pub use workbench::Workbench;
