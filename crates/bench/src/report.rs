//! Table/series output shared by the harness binaries.
//!
//! Each binary prints (a) a human-readable aligned table mirroring the
//! paper figure/table it regenerates and (b) one JSON line per data point
//! (`--json` flag) so downstream tooling can re-plot.

use serde::Serialize;

/// One (x, y…) point of a regenerated figure series.
#[derive(Debug, Clone, Serialize)]
pub struct SeriesPoint {
    /// Series label (e.g. `"bipolar"`, `"eps 1"`).
    pub series: String,
    /// X value (dimension count, epoch, ε, …).
    pub x: f64,
    /// Y value (accuracy %, sensitivity, PSNR, …).
    pub y: f64,
}

/// A regenerated figure: identity plus the point cloud.
#[derive(Debug, Clone, Serialize)]
pub struct Figure {
    /// Paper identifier, e.g. `"fig5a"` or `"table1"`.
    pub id: String,
    /// Human description of what is being reproduced.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The data.
    pub points: Vec<SeriesPoint>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, series: impl Into<String>, x: f64, y: f64) {
        self.points.push(SeriesPoint {
            series: series.into(),
            x,
            y,
        });
    }

    /// The distinct series labels in first-appearance order.
    pub fn series_labels(&self) -> Vec<String> {
        let mut labels: Vec<String> = Vec::new();
        for p in &self.points {
            if !labels.contains(&p.series) {
                labels.push(p.series.clone());
            }
        }
        labels
    }

    /// The sorted distinct x values.
    pub fn x_values(&self) -> Vec<f64> {
        let mut xs: Vec<f64> = Vec::new();
        for p in &self.points {
            if !xs.iter().any(|v| (v - p.x).abs() < 1e-12) {
                xs.push(p.x);
            }
        }
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
        xs
    }

    /// Renders the figure as an aligned table: one row per x, one column
    /// per series.
    pub fn to_table(&self) -> String {
        let labels = self.series_labels();
        let mut header = vec![self.x_label.clone()];
        header.extend(labels.iter().cloned());
        let mut rows = vec![header];
        for x in self.x_values() {
            let mut row = vec![format_num(x)];
            for label in &labels {
                let cell = self
                    .points
                    .iter()
                    .find(|p| p.series == *label && (p.x - x).abs() < 1e-12)
                    .map(|p| format_num(p.y))
                    .unwrap_or_else(|| "-".to_owned());
                row.push(cell);
            }
            rows.push(row);
        }
        let mut out = format!("== {} — {} ==\n", self.id, self.title);
        out.push_str(&render_rows(&rows));
        out.push_str(&format!("(y: {})\n", self.y_label));
        out
    }

    /// Prints the table, and the JSON point records when `json` is set.
    pub fn emit(&self, json: bool) {
        println!("{}", self.to_table());
        if json {
            for p in &self.points {
                let rec = serde_json::json!({
                    "figure": self.id,
                    "series": p.series,
                    "x": p.x,
                    "y": p.y,
                });
                println!("{rec}");
            }
        }
    }
}

/// Renders rows of cells with aligned columns.
pub fn print_table(rows: &[Vec<String>]) {
    print!("{}", render_rows(rows));
}

fn render_rows(rows: &[Vec<String>]) -> String {
    let cols = rows.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, cell)| format!("{cell:>width$}", width = widths[i]))
            .collect();
        out.push_str(&line.join("  "));
        out.push('\n');
        if ri == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    }
    out
}

/// Compact numeric formatting: integers plain, small values with
/// precision, big values in scientific notation.
pub fn format_num(v: f64) -> String {
    if v == 0.0 {
        return "0".to_owned();
    }
    let a = v.abs();
    if !(1e-2..1e6).contains(&a) {
        format!("{v:.2e}")
    } else if (v.round() - v).abs() < 1e-9 && a < 1e6 {
        format!("{}", v.round() as i64)
    } else if a >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Returns true when `--json` was passed to the harness binary.
pub fn json_flag() -> bool {
    std::env::args().any(|a| a == "--json")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_collects_series_and_xs() {
        let mut f = Figure::new("figX", "t", "dims", "acc");
        f.push("a", 1.0, 0.5);
        f.push("b", 1.0, 0.6);
        f.push("a", 2.0, 0.7);
        assert_eq!(f.series_labels(), vec!["a", "b"]);
        assert_eq!(f.x_values(), vec![1.0, 2.0]);
    }

    #[test]
    fn table_renders_missing_cells_as_dash() {
        let mut f = Figure::new("figX", "t", "x", "y");
        f.push("a", 1.0, 0.5);
        f.push("b", 2.0, 0.6);
        let t = f.to_table();
        assert!(t.contains('-'));
        assert!(t.contains("figX"));
    }

    #[test]
    fn format_num_modes() {
        assert_eq!(format_num(0.0), "0");
        assert_eq!(format_num(42.0), "42");
        assert_eq!(format_num(2.46913), "2.47");
        assert_eq!(format_num(2_500_000.0), "2.50e6");
        assert_eq!(format_num(0.000_002_7), "2.70e-6");
        assert_eq!(format_num(123.456), "123.5");
    }

    #[test]
    fn render_aligns_columns() {
        let rows = vec![
            vec!["h1".to_owned(), "header2".to_owned()],
            vec!["1".to_owned(), "2".to_owned()],
        ];
        let s = render_rows(&rows);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with('-'));
    }
}
