//! Inference throughput: similarity search against the class memory
//! (Eq. 4), sweeping dimensionality and class count, with full-precision
//! vs obfuscated queries — the latency the cloud side of §III-C pays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use privehd_core::prelude::*;
use privehd_core::Hypervector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn synthetic_model(num_classes: usize, dim: usize, seed: u64) -> HdModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let classes = (0..num_classes)
        .map(|_| Hypervector::from_vec((0..dim).map(|_| rng.gen_range(-50.0..50.0)).collect()))
        .collect();
    let mut m = HdModel::from_classes(classes).expect("non-empty classes");
    m.refresh_norms();
    m
}

fn query(dim: usize, seed: u64) -> Hypervector {
    let mut rng = StdRng::seed_from_u64(seed);
    Hypervector::from_vec((0..dim).map(|_| rng.gen_range(-20.0..20.0)).collect())
}

fn bench_predict_dims(c: &mut Criterion) {
    let mut group = c.benchmark_group("predict_26_classes");
    for dim in [1_000usize, 4_000, 10_000] {
        let model = synthetic_model(26, dim, 1);
        let q = query(dim, 2);
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, _| {
            b.iter(|| model.predict(&q).expect("predict"))
        });
    }
    group.finish();
}

fn bench_predict_classes(c: &mut Criterion) {
    let mut group = c.benchmark_group("predict_10k_dims");
    for classes in [2usize, 10, 26, 100] {
        let model = synthetic_model(classes, 10_000, 1);
        let q = query(10_000, 2);
        group.bench_with_input(BenchmarkId::from_parameter(classes), &classes, |b, _| {
            b.iter(|| model.predict(&q).expect("predict"))
        });
    }
    group.finish();
}

fn bench_obfuscated_query(c: &mut Criterion) {
    // The edge-side cost of §III-C: quantize + mask before offloading.
    let dim = 10_000;
    let q = query(dim, 3);
    let ob = Obfuscator::new(
        dim,
        ObfuscateConfig::new(QuantScheme::Bipolar)
            .with_masked_dims(5_000)
            .with_seed(4),
    )
    .expect("valid config");
    c.bench_function("obfuscate_10k_5kmask", |b| {
        b.iter(|| ob.obfuscate(&q).expect("obfuscate"))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_predict_dims, bench_predict_classes, bench_obfuscated_query
);
criterion_main!(benches);
