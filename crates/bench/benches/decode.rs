//! Reconstruction-attack cost (Eq. 10): what an adversary pays to invert
//! an encoding, sweeping dimensionality and feature count. Relevant to
//! the threat model — the attack is cheap, which is exactly why the
//! obfuscation of §III-C is needed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use privehd_core::prelude::*;
use privehd_core::Encoder;

fn bench_decode_dims(c: &mut Criterion) {
    let features = 617;
    let x: Vec<f64> = (0..features)
        .map(|i| ((i * 13) % 100) as f64 / 99.0)
        .collect();
    let mut group = c.benchmark_group("decode_617_features");
    for dim in [1_000usize, 4_000, 10_000] {
        let enc = ScalarEncoder::new(
            EncoderConfig::new(features, dim)
                .with_levels(100)
                .with_seed(1),
        )
        .expect("valid config");
        let h = enc.encode(&x).expect("encode");
        let decoder = Decoder::new(enc.item_memory().clone());
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, _| {
            b.iter(|| decoder.decode(&h).expect("decode"))
        });
    }
    group.finish();
}

fn bench_decode_features(c: &mut Criterion) {
    let dim = 4_000;
    let mut group = c.benchmark_group("decode_4k_dims");
    for features in [128usize, 617, 784] {
        let x: Vec<f64> = (0..features)
            .map(|i| ((i * 13) % 100) as f64 / 99.0)
            .collect();
        let enc = ScalarEncoder::new(
            EncoderConfig::new(features, dim)
                .with_levels(100)
                .with_seed(1),
        )
        .expect("valid config");
        let h = enc.encode(&x).expect("encode");
        let decoder = Decoder::new(enc.item_memory().clone());
        group.bench_with_input(BenchmarkId::from_parameter(features), &features, |b, _| {
            b.iter(|| decoder.decode(&h).expect("decode"))
        });
    }
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let a: Vec<f64> = (0..784).map(|i| (i % 100) as f64 / 99.0).collect();
    let b_: Vec<f64> = a.iter().map(|v| (v + 0.05).min(1.0)).collect();
    c.bench_function("psnr_784", |bch| bch.iter(|| psnr(&a, &b_).expect("psnr")));
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_decode_dims, bench_decode_features, bench_metrics
);
criterion_main!(benches);
