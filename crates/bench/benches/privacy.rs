//! Privacy-machinery cost: noise calibration, noise sampling at model
//! scale, and the ablation the design calls out — noise added once after
//! aggregation (Prive-HD, Eq. 8) vs per-record noise during training.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use privehd_core::{HdModel, Hypervector};
use privehd_privacy::{GaussianMechanism, Mechanism, PrivacyBudget, Sensitivity};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_sigma_calibration(c: &mut Criterion) {
    c.bench_function("sigma_calibration", |b| {
        b.iter(|| {
            let budget = PrivacyBudget::with_paper_delta(1.0).expect("valid");
            budget.gaussian_sigma()
        })
    });
}

fn bench_noise_generation(c: &mut Criterion) {
    let budget = PrivacyBudget::with_paper_delta(1.0).expect("valid");
    let mut group = c.benchmark_group("noise_26_classes");
    for dim in [1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, &dim| {
            let mut mech = GaussianMechanism::new(budget, 7);
            b.iter(|| mech.noise_for_classes(26, dim, 22.3).expect("noise"))
        });
    }
    group.finish();
}

fn bench_sensitivity(c: &mut Criterion) {
    c.bench_function("sensitivity_analytic", |b| {
        b.iter(|| {
            let s = Sensitivity::new(617, 10_000);
            (s.l1_full(), s.l2_full())
        })
    });
}

/// Ablation: Prive-HD adds calibrated noise once after aggregation;
/// the naive alternative perturbs every record during training. The
/// bench quantifies the training-cost gap (the paper notes DP-SGD-style
/// training pays per-epoch; Prive-HD pays once).
fn bench_aggregation_ablation(c: &mut Criterion) {
    let dim = 2_000;
    let n_records = 128;
    let mut rng = StdRng::seed_from_u64(3);
    let records: Vec<(Hypervector, usize)> = (0..n_records)
        .map(|i| {
            (
                Hypervector::from_vec((0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect()),
                i % 2,
            )
        })
        .collect();
    let budget = PrivacyBudget::with_paper_delta(1.0).expect("valid");

    let mut group = c.benchmark_group("noise_placement");
    group.bench_function("after_aggregation", |b| {
        b.iter(|| {
            let mut model = HdModel::train(2, dim, &records).expect("train");
            let mut mech = GaussianMechanism::new(budget, 9);
            let noise = mech.noise_for_classes(2, dim, 22.3).expect("noise");
            model.add_class_noise(&noise).expect("noise add");
            model
        })
    });
    group.bench_function("per_record", |b| {
        b.iter(|| {
            let mut mech = GaussianMechanism::new(budget, 9);
            let noisy: Vec<(Hypervector, usize)> = records
                .iter()
                .map(|(h, y)| {
                    let mut n = mech.noise_hypervector(dim, 22.3).expect("noise");
                    n.add_scaled(h, 1.0).expect("same dim");
                    (n, *y)
                })
                .collect();
            HdModel::train(2, dim, &noisy).expect("train")
        })
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sigma_calibration, bench_noise_generation, bench_sensitivity, bench_aggregation_ablation
);
criterion_main!(benches);
