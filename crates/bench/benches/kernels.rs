//! Micro-benchmarks for the `privehd_core::kernels` layer: tuned paths
//! vs the retained naive references, at a reduced dimensionality so the
//! whole suite stays fast (the full ISOLET-sized comparison lives in the
//! `perfsuite` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use privehd_core::{Encoder, EncoderConfig, HdModel, Hypervector, LevelEncoder, ScalarEncoder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const FEATURES: usize = 128;
const DIM: usize = 4_096;
const LEVELS: usize = 64;
const CLASSES: usize = 10;

fn input(rng: &mut StdRng) -> Vec<f64> {
    (0..FEATURES).map(|_| rng.gen_range(0.0..1.0)).collect()
}

fn bench_encode(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let x = input(&mut rng);
    let scalar = ScalarEncoder::new(
        EncoderConfig::new(FEATURES, DIM)
            .with_levels(LEVELS)
            .with_seed(5),
    )
    .unwrap();
    let level = LevelEncoder::new(
        EncoderConfig::new(FEATURES, DIM)
            .with_levels(LEVELS)
            .with_seed(5),
    )
    .unwrap();

    let mut group = c.benchmark_group("encode_kernels");
    group.throughput(Throughput::Elements(DIM as u64));
    group.bench_function("scalar/kernel", |b| b.iter(|| scalar.encode(&x).unwrap()));
    group.bench_function("scalar/reference", |b| {
        b.iter(|| scalar.encode_reference(&x).unwrap())
    });
    group.bench_function("level/kernel", |b| b.iter(|| level.encode(&x).unwrap()));
    group.bench_function("level/reference", |b| {
        b.iter(|| level.encode_reference(&x).unwrap())
    });
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(23);
    let queries: Vec<Hypervector> = (0..64)
        .map(|_| Hypervector::from_vec((0..DIM).map(|_| rng.gen_range(-30.0..30.0)).collect()))
        .collect();
    let mut model = HdModel::new(CLASSES, DIM).unwrap();
    for (i, q) in queries.iter().enumerate() {
        model.bundle(i % CLASSES, q).unwrap();
    }
    model.refresh_norms();

    let mut group = c.benchmark_group("predict_kernels");
    for &batch in &[8usize, 64] {
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::new("blocked", batch), &batch, |b, &n| {
            b.iter(|| model.predict_batch_with(&queries[..n], 1).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("reference", batch), &batch, |b, &n| {
            b.iter(|| {
                queries[..n]
                    .iter()
                    .map(|q| model.predict_reference(q).unwrap())
                    .collect::<Vec<_>>()
            })
        });
    }
    group.finish();
}

fn bench_packed(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(31);
    let mut model = HdModel::new(CLASSES, DIM).unwrap();
    for i in 0..CLASSES {
        model
            .bundle(
                i,
                &Hypervector::from_vec((0..DIM).map(|_| rng.gen_range(-30.0..30.0)).collect()),
            )
            .unwrap();
    }
    model.refresh_norms();
    let q = privehd_core::BipolarHv::random(DIM, 9);
    let dense = q.to_dense();

    let mut group = c.benchmark_group("packed_predict");
    group.throughput(Throughput::Elements(DIM as u64));
    group.bench_function("branchless", |b| {
        b.iter(|| model.predict_packed(&q).unwrap())
    });
    group.bench_function("dense_reference", |b| {
        b.iter(|| model.predict_reference(&dense).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_encode, bench_predict, bench_packed);
criterion_main!(benches);
