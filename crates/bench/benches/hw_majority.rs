//! Software cost of the simulated hardware circuits: exact vs
//! approximate majority (Fig. 7a) and exact vs saturated ternary
//! summation (Fig. 7b), plus the cascade-depth ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use privehd_hw::{exact_sign, MajorityCircuit, SaturatedAdderTree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bits(n: usize, seed: u64) -> Vec<bool> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen()).collect()
}

fn ternary_values(n: usize, seed: u64) -> Vec<i32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen();
            if u < 0.25 {
                -1
            } else if u < 0.75 {
                0
            } else {
                1
            }
        })
        .collect()
}

fn bench_majority(c: &mut Criterion) {
    let input = bits(617, 1);
    let mut group = c.benchmark_group("majority_617");
    group.bench_function("exact", |b| b.iter(|| exact_sign(&input)));
    for stages in [1usize, 2, 3] {
        let circuit = MajorityCircuit::with_stages(stages);
        group.bench_with_input(BenchmarkId::new("approx", stages), &stages, |b, _| {
            b.iter(|| circuit.sign(&input))
        });
    }
    group.finish();
}

fn bench_saturated_tree(c: &mut Criterion) {
    let tree = SaturatedAdderTree::new();
    let mut group = c.benchmark_group("ternary_sum");
    for n in [96usize, 384, 768] {
        let values = ternary_values(n, 2);
        group.bench_with_input(BenchmarkId::new("saturated", n), &n, |b, _| {
            b.iter(|| tree.sum(&values))
        });
        group.bench_with_input(BenchmarkId::new("exact", n), &n, |b, _| {
            b.iter(|| values.iter().map(|&v| v as i64).sum::<i64>())
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_majority, bench_saturated_tree
);
criterion_main!(benches);
