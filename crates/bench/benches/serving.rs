//! Serving throughput: single-query submission vs micro-batched
//! serving across batch sizes, reporting queries/sec.
//!
//! `serve_max_batch/1` is the single-query baseline — with `max_batch
//! = 1` the batcher flushes every request alone, so each query pays the
//! full dispatch cost. Larger `max_batch` values amortize dispatch and
//! let the worker pool run whole batches; on multi-core hardware the
//! micro-batched configurations should clear ≥ 2× the baseline
//! queries/sec. A closed-loop client keeps a fixed window of requests
//! in flight so every configuration is measured under saturation.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use privehd_core::prelude::*;
use privehd_core::Hypervector;
use privehd_serve::{ModelId, ServeConfig, ServeEngine, ShardedRegistry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIM: usize = 2_000;
const CLASSES: usize = 26;
const QUERIES_PER_ITER: usize = 512;
const IN_FLIGHT: usize = 128;

fn synthetic_model(seed: u64) -> HdModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let classes = (0..CLASSES)
        .map(|_| Hypervector::from_vec((0..DIM).map(|_| rng.gen_range(-50.0..50.0)).collect()))
        .collect();
    let mut m = HdModel::from_classes(classes).expect("non-empty classes");
    m.refresh_norms();
    m
}

fn queries(seed: u64, n: usize) -> Vec<Hypervector> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Hypervector::from_vec((0..DIM).map(|_| rng.gen_range(-20.0..20.0)).collect()))
        .collect()
}

/// Pumps `queries` through `engine` with a bounded in-flight window and
/// waits for every response.
fn pump(engine: &ServeEngine, queries: &[Hypervector]) {
    pump_tenants(engine, queries, std::slice::from_ref(&ModelId::default()));
}

fn bench_serving_batch_sizes(c: &mut Criterion) {
    let model = synthetic_model(1);
    let qs = queries(2, QUERIES_PER_ITER);
    let mut group = c.benchmark_group("serve_max_batch");
    group.throughput(Throughput::Elements(QUERIES_PER_ITER as u64));
    for max_batch in [1usize, 8, 64, 256] {
        let registry =
            Arc::new(ShardedRegistry::with_model(model.clone(), "bench").expect("publishable"));
        let config = ServeConfig {
            max_batch,
            max_delay: Duration::from_micros(200),
            queue_depth: 4_096,
            ..ServeConfig::default()
        };
        let engine = ServeEngine::start(registry, config).expect("engine");
        group.bench_with_input(
            BenchmarkId::from_parameter(max_batch),
            &max_batch,
            |b, _| b.iter(|| pump(&engine, &qs)),
        );
        engine.shutdown();
    }
    group.finish();
}

/// Like [`pump`] but spreads the queries round-robin over `tenants` via
/// the per-model submission path.
fn pump_tenants(engine: &ServeEngine, queries: &[Hypervector], tenants: &[ModelId]) {
    let mut pending = std::collections::VecDeque::with_capacity(IN_FLIGHT);
    for (i, q) in queries.iter().enumerate() {
        let id = &tenants[i % tenants.len()];
        if pending.len() == IN_FLIGHT {
            let p: privehd_serve::PendingPrediction = pending.pop_front().expect("non-empty");
            p.wait().expect("prediction");
        }
        loop {
            match engine.submit(id, q.clone()) {
                Ok(p) => {
                    pending.push_back(p);
                    break;
                }
                Err(privehd_serve::ServeError::QueueFull) => {
                    if let Some(p) = pending.pop_front() {
                        p.wait().expect("prediction");
                    }
                }
                Err(e) => panic!("submit failed: {e}"),
            }
        }
    }
    for p in pending {
        p.wait().expect("prediction");
    }
}

fn bench_multi_tenant_serving(c: &mut Criterion) {
    // Per-model batching cost as the same total traffic spreads over
    // more tenants: with T tenants each batch holds ~1/T of the window,
    // so this measures the routing + smaller-batch overhead.
    let model = synthetic_model(7);
    let qs = queries(8, QUERIES_PER_ITER);
    let mut group = c.benchmark_group("serve_tenants");
    group.throughput(Throughput::Elements(QUERIES_PER_ITER as u64));
    for tenants in [1usize, 4, 16] {
        let registry = Arc::new(ShardedRegistry::new());
        let ids: Vec<ModelId> = (0..tenants)
            .map(|t| ModelId::new(format!("tenant-{t}")))
            .collect();
        for id in &ids {
            registry
                .publish(id, model.clone(), "bench")
                .expect("publishable");
        }
        let config = ServeConfig {
            max_batch: 64,
            max_delay: Duration::from_micros(200),
            queue_depth: 4_096,
            ..ServeConfig::default()
        };
        let engine = ServeEngine::start(registry, config).expect("engine");
        group.bench_with_input(BenchmarkId::from_parameter(tenants), &tenants, |b, _| {
            b.iter(|| pump_tenants(&engine, &qs, &ids))
        });
        engine.shutdown();
    }
    group.finish();
}

fn bench_predict_batch_api(c: &mut Criterion) {
    // The core batch API underneath the engine: sequential loop vs
    // scoped-thread fan-out (identical results, see core::model tests).
    let model = synthetic_model(3);
    let qs = queries(4, 256);
    let mut group = c.benchmark_group("predict_batch_256");
    group.throughput(Throughput::Elements(256));
    group.bench_function("sequential", |b| {
        b.iter(|| {
            qs.iter()
                .map(|q| model.predict(q).expect("predict"))
                .collect::<Vec<_>>()
        })
    });
    group.bench_function("parallel", |b| {
        b.iter(|| model.predict_batch(&qs).expect("predict_batch"))
    });
    group.finish();
}

fn bench_packed_fastpath(c: &mut Criterion) {
    // Dense vs bit-packed classification of a bipolar (obfuscated)
    // query — the popcount fast path workers take when
    // `packed_fastpath` is set.
    let model = synthetic_model(5);
    let packed = privehd_core::BipolarHv::random(DIM, 6);
    let dense = packed.to_dense();
    let mut group = c.benchmark_group("obfuscated_query_path");
    group.bench_function("dense", |b| {
        b.iter(|| model.predict(&dense).expect("predict"))
    });
    group.bench_function("packed", |b| {
        b.iter(|| model.predict_packed(&packed).expect("predict_packed"))
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_serving_batch_sizes, bench_multi_tenant_serving, bench_predict_batch_api,
        bench_packed_fastpath
);
criterion_main!(benches);
