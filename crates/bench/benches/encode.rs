//! Encoding throughput: scalar (Eq. 2a) vs level/record (Eq. 2b)
//! encodings across hypervector dimensionalities, plus the quantization
//! cost on top — the software-side numbers behind the Table I platform
//! comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use privehd_core::prelude::*;
use privehd_core::{Encoder, LevelEncoder};

fn input(features: usize) -> Vec<f64> {
    (0..features)
        .map(|i| ((i * 29) % 100) as f64 / 99.0)
        .collect()
}

fn bench_encoders(c: &mut Criterion) {
    let features = 617; // ISOLET shape
    let x = input(features);
    let mut group = c.benchmark_group("encode");
    for dim in [1_000usize, 4_000, 10_000] {
        group.throughput(Throughput::Elements((features * dim) as u64));
        let scalar = ScalarEncoder::new(
            EncoderConfig::new(features, dim)
                .with_levels(100)
                .with_seed(1),
        )
        .expect("valid config");
        group.bench_with_input(BenchmarkId::new("scalar", dim), &dim, |b, _| {
            b.iter(|| scalar.encode(&x).expect("encode"))
        });
        let level = LevelEncoder::new(
            EncoderConfig::new(features, dim)
                .with_levels(100)
                .with_seed(1),
        )
        .expect("valid config");
        group.bench_with_input(BenchmarkId::new("level", dim), &dim, |b, _| {
            b.iter(|| level.encode(&x).expect("encode"))
        });
    }
    group.finish();
}

fn bench_quantization(c: &mut Criterion) {
    let features = 617;
    let dim = 10_000;
    let encoder = ScalarEncoder::new(
        EncoderConfig::new(features, dim)
            .with_levels(100)
            .with_seed(1),
    )
    .expect("valid config");
    let h = encoder.encode(&input(features)).expect("encode");
    let mut group = c.benchmark_group("quantize_10k");
    for scheme in [
        QuantScheme::Bipolar,
        QuantScheme::Ternary,
        QuantScheme::TernaryBiased,
        QuantScheme::TwoBit,
    ] {
        group.bench_function(scheme.label(), |b| b.iter(|| scheme.quantize_adaptive(&h)));
    }
    group.finish();
}

fn bench_batch_parallelism(c: &mut Criterion) {
    let features = 617;
    let dim = 2_000;
    let encoder = ScalarEncoder::new(
        EncoderConfig::new(features, dim)
            .with_levels(100)
            .with_seed(1),
    )
    .expect("valid config");
    let batch: Vec<Vec<f64>> = (0..64).map(|_| input(features)).collect();
    let mut group = c.benchmark_group("encode_batch_64");
    group.bench_function("parallel", |b| {
        b.iter(|| encoder.encode_batch(&batch).expect("batch"))
    });
    group.bench_function("sequential", |b| {
        b.iter(|| {
            batch
                .iter()
                .map(|x| encoder.encode(x).expect("encode"))
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_encoders, bench_quantization, bench_batch_parallelism
);
criterion_main!(benches);
