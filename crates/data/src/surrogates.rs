//! The three named dataset surrogates used throughout the paper.
//!
//! | surrogate | real dataset | features | classes | accuracy band |
//! |---|---|---|---|---|
//! | [`isolet`] | UCI ISOLET (spoken letters) | 617 | 26 | ≈ 93% |
//! | [`face`]   | Caltech web faces           | 608 | 2  | ≈ 95% |
//! | [`mnist`]  | MNIST handwritten digits    | 784 | 10 | ≈ 90%+ |
//!
//! The difficulty knobs (`separation`, `noise`, `nuisance_fraction`) were
//! calibrated once against a 10,000-dimension full-precision HD model so
//! the baseline accuracy lands in each paper band; the calibration values
//! are fixed here, not re-fit per run.

use crate::dataset::Dataset;
use crate::digits;
use crate::synthetic::{ClusterSpec, SyntheticGenerator};

/// ISOLET surrogate: 617 features, 26 classes (spoken letter
/// recognition). Calibrated for ≈93% full-precision HD accuracy.
///
/// # Examples
///
/// ```
/// let ds = privehd_data::surrogates::isolet(20, 5, 0);
/// assert_eq!(ds.features(), 617);
/// assert_eq!(ds.num_classes(), 26);
/// ```
pub fn isolet(train_per_class: usize, test_per_class: usize, seed: u64) -> Dataset {
    SyntheticGenerator::new(
        ClusterSpec::new("isolet-surrogate", 617, 26)
            .with_samples(train_per_class, test_per_class)
            .with_difficulty(0.14, 0.52)
            .with_nuisance(0.35)
            .with_seed(seed.wrapping_mul(2).wrapping_add(101)),
    )
    .generate()
}

/// FACE surrogate: 608 features, 2 classes (face / non-face web images,
/// pre-extracted features). Calibrated for ≈95% accuracy.
///
/// # Examples
///
/// ```
/// let ds = privehd_data::surrogates::face(20, 5, 0);
/// assert_eq!(ds.features(), 608);
/// assert_eq!(ds.num_classes(), 2);
/// ```
pub fn face(train_per_class: usize, test_per_class: usize, seed: u64) -> Dataset {
    SyntheticGenerator::new(
        ClusterSpec::new("face-surrogate", 608, 2)
            .with_samples(train_per_class, test_per_class)
            .with_difficulty(0.16, 0.78)
            .with_nuisance(0.5)
            .with_seed(seed.wrapping_mul(2).wrapping_add(211)),
    )
    .generate()
}

/// MNIST surrogate: 784 pixels, 10 classes, stroke-rendered digit images
/// (see [`crate::digits`]). The pixel grid makes the reconstruction
/// attack of Fig. 2 / Fig. 6 visually meaningful.
///
/// # Examples
///
/// ```
/// let ds = privehd_data::surrogates::mnist(20, 5, 0);
/// assert_eq!(ds.features(), 784);
/// assert_eq!(ds.num_classes(), 10);
/// ```
pub fn mnist(train_per_class: usize, test_per_class: usize, seed: u64) -> Dataset {
    digits::digits_dataset(train_per_class, test_per_class, seed.wrapping_add(307))
}

/// All three surrogates at the given sizes, in the order the paper's
/// tables list them (ISOLET, FACE, MNIST).
pub fn all(train_per_class: usize, test_per_class: usize, seed: u64) -> Vec<Dataset> {
    vec![
        isolet(train_per_class, test_per_class, seed),
        face(train_per_class, test_per_class, seed),
        mnist(train_per_class, test_per_class, seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_the_paper() {
        let i = isolet(5, 2, 0);
        assert_eq!((i.features(), i.num_classes()), (617, 26));
        let f = face(5, 2, 0);
        assert_eq!((f.features(), f.num_classes()), (608, 2));
        let m = mnist(5, 2, 0);
        assert_eq!((m.features(), m.num_classes()), (784, 10));
    }

    #[test]
    fn all_returns_paper_order() {
        let sets = all(3, 1, 0);
        assert_eq!(sets.len(), 3);
        assert!(sets[0].name().contains("isolet"));
        assert!(sets[1].name().contains("face"));
        assert!(sets[2].name().contains("mnist"));
    }

    #[test]
    fn seeds_change_the_data() {
        assert_ne!(isolet(3, 1, 0), isolet(3, 1, 1));
        assert_ne!(face(3, 1, 0), face(3, 1, 1));
        assert_ne!(mnist(3, 1, 0), mnist(3, 1, 1));
    }

    #[test]
    fn surrogates_are_deterministic() {
        assert_eq!(isolet(3, 1, 5), isolet(3, 1, 5));
        assert_eq!(face(3, 1, 5), face(3, 1, 5));
        assert_eq!(mnist(3, 1, 5), mnist(3, 1, 5));
    }
}
