//! Dataset import/export: CSV interchange with real corpora.
//!
//! The surrogates exist because this environment has no network; a
//! downstream user *does* have the real UCI ISOLET / MNIST files. This
//! module reads and writes the common `f,f,…,f,label` CSV layout (the
//! UCI ISOLET distribution format) so every experiment in the workspace
//! can run on real data unchanged. Features are min–max normalized to
//! `[0, 1]` per column on import, as the Eq. (1) feature-level grid
//! expects.

use std::io::{BufRead, BufReader, Read, Write};

use crate::dataset::{Dataset, DatasetError, Sample};

/// Errors arising while parsing a CSV dataset.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A cell failed to parse as a number (line, column).
    Parse {
        /// 1-based line number.
        line: usize,
        /// 0-based column index.
        column: usize,
    },
    /// A row had a different arity than the first row.
    Ragged {
        /// 1-based line number.
        line: usize,
    },
    /// A label was negative or non-integral.
    Label {
        /// 1-based line number.
        line: usize,
    },
    /// No data rows were found.
    Empty,
    /// The assembled dataset violated an invariant.
    Dataset(DatasetError),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "i/o error: {e}"),
            CsvError::Parse { line, column } => {
                write!(f, "unparseable number at line {line}, column {column}")
            }
            CsvError::Ragged { line } => write!(f, "inconsistent column count at line {line}"),
            CsvError::Label { line } => write!(f, "invalid class label at line {line}"),
            CsvError::Empty => write!(f, "no data rows found"),
            CsvError::Dataset(e) => write!(f, "invalid dataset: {e}"),
        }
    }
}

impl std::error::Error for CsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            CsvError::Dataset(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Parses `feature,…,feature,label` rows into raw (unnormalized)
/// samples. Lines that are empty or start with `#` are skipped.
fn parse_rows<R: Read>(reader: R) -> Result<Vec<(Vec<f64>, usize)>, CsvError> {
    let buf = BufReader::new(reader);
    let mut rows: Vec<(Vec<f64>, usize)> = Vec::new();
    let mut arity: Option<usize> = None;
    for (idx, line) in buf.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let cells: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        match arity {
            None => arity = Some(cells.len()),
            Some(a) if a != cells.len() => return Err(CsvError::Ragged { line: line_no }),
            _ => {}
        }
        if cells.len() < 2 {
            return Err(CsvError::Ragged { line: line_no });
        }
        let mut features = Vec::with_capacity(cells.len() - 1);
        for (col, cell) in cells[..cells.len() - 1].iter().enumerate() {
            let v: f64 = cell.parse().map_err(|_| CsvError::Parse {
                line: line_no,
                column: col,
            })?;
            features.push(v);
        }
        let label_cell = cells[cells.len() - 1];
        // Accept both "3" and "3.0" labels (UCI ISOLET uses floats).
        let label_f: f64 = label_cell.parse().map_err(|_| CsvError::Parse {
            line: line_no,
            column: cells.len() - 1,
        })?;
        if label_f < 0.0 || label_f.fract() != 0.0 {
            return Err(CsvError::Label { line: line_no });
        }
        rows.push((features, label_f as usize));
    }
    if rows.is_empty() {
        return Err(CsvError::Empty);
    }
    Ok(rows)
}

/// Min–max normalizes each column to `[0, 1]` in place (constant columns
/// map to 0.5).
fn normalize_columns(rows: &mut [(Vec<f64>, usize)]) {
    let features = rows[0].0.len();
    for col in 0..features {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for (x, _) in rows.iter() {
            lo = lo.min(x[col]);
            hi = hi.max(x[col]);
        }
        let span = hi - lo;
        for (x, _) in rows.iter_mut() {
            x[col] = if span > 0.0 {
                ((x[col] - lo) / span).clamp(0.0, 1.0)
            } else {
                0.5
            };
        }
    }
}

/// Reads a labelled CSV (train rows) and a second CSV (test rows) into a
/// normalized [`Dataset`]. Labels may be any non-negative integers; they
/// are remapped densely to `0..num_classes` preserving order of first
/// appearance in the training split.
///
/// Pass `&mut reader` when you need the readers back afterwards.
///
/// # Errors
///
/// Returns a [`CsvError`] describing the first problem found.
pub fn dataset_from_csv<R1: Read, R2: Read>(
    name: &str,
    train: R1,
    test: R2,
) -> Result<Dataset, CsvError> {
    let mut train_rows = parse_rows(train)?;
    let mut test_rows = parse_rows(test)?;
    normalize_columns(&mut train_rows);
    normalize_columns(&mut test_rows);

    // Dense label remap from the training split.
    let mut label_map: Vec<usize> = Vec::new();
    let remap = |raw: usize, map: &mut Vec<usize>| -> usize {
        match map.iter().position(|&l| l == raw) {
            Some(i) => i,
            None => {
                map.push(raw);
                map.len() - 1
            }
        }
    };
    let features = train_rows[0].0.len();
    let to_samples = |rows: Vec<(Vec<f64>, usize)>, map: &mut Vec<usize>| -> Vec<Sample> {
        rows.into_iter()
            .map(|(features, raw)| Sample {
                features,
                label: remap(raw, map),
            })
            .collect()
    };
    let train_samples = to_samples(train_rows, &mut label_map);
    let test_samples = to_samples(test_rows, &mut label_map);
    let num_classes = label_map.len();
    Dataset::new(name, features, num_classes, train_samples, test_samples)
        .map_err(CsvError::Dataset)
}

/// Writes a dataset split back out as `feature,…,feature,label` CSV.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn split_to_csv<W: Write>(samples: &[Sample], mut writer: W) -> std::io::Result<()> {
    for s in samples {
        let mut row = s
            .features
            .iter()
            .map(|v| format!("{v}"))
            .collect::<Vec<_>>()
            .join(",");
        row.push(',');
        row.push_str(&s.label.to_string());
        writeln!(writer, "{row}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRAIN: &str = "0.0,10.0,1\n1.0,20.0,2\n0.5,15.0,1\n";
    const TEST: &str = "0.2,12.0,2\n";

    #[test]
    fn round_trip_parses_and_normalizes() {
        let ds = dataset_from_csv("t", TRAIN.as_bytes(), TEST.as_bytes()).unwrap();
        assert_eq!(ds.features(), 2);
        assert_eq!(ds.num_classes(), 2);
        assert_eq!(ds.train().len(), 3);
        assert_eq!(ds.test().len(), 1);
        // Column 0 spans [0,1] after min-max normalization.
        assert_eq!(ds.train()[0].features[0], 0.0);
        assert_eq!(ds.train()[1].features[0], 1.0);
        assert_eq!(ds.train()[2].features[0], 0.5);
        // Labels remapped densely: 1 -> 0, 2 -> 1.
        assert_eq!(ds.train()[0].label, 0);
        assert_eq!(ds.train()[1].label, 1);
        assert_eq!(ds.test()[0].label, 1);
    }

    #[test]
    fn float_labels_are_accepted() {
        let ds =
            dataset_from_csv("t", "0,1,3.0\n1,0,4.0\n".as_bytes(), "0,0,3.0\n".as_bytes()).unwrap();
        assert_eq!(ds.num_classes(), 2);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let csv = "# header comment\n\n0,1,0\n1,0,1\n";
        let ds = dataset_from_csv("t", csv.as_bytes(), "0,1,0\n".as_bytes()).unwrap();
        assert_eq!(ds.train().len(), 2);
    }

    #[test]
    fn ragged_rows_are_rejected() {
        let err = dataset_from_csv("t", "0,1,0\n0,1,2,0\n".as_bytes(), TEST.as_bytes());
        assert!(matches!(err, Err(CsvError::Ragged { line: 2 })));
    }

    #[test]
    fn bad_numbers_report_position() {
        let err = dataset_from_csv("t", "0,x,0\n".as_bytes(), TEST.as_bytes());
        match err {
            Err(CsvError::Parse { line, column }) => {
                assert_eq!((line, column), (1, 1));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn fractional_labels_are_rejected() {
        let err = dataset_from_csv("t", "0,1,1.5\n".as_bytes(), TEST.as_bytes());
        assert!(matches!(err, Err(CsvError::Label { line: 1 })));
    }

    #[test]
    fn empty_input_is_rejected() {
        let err = dataset_from_csv("t", "".as_bytes(), TEST.as_bytes());
        assert!(matches!(err, Err(CsvError::Empty)));
    }

    #[test]
    fn constant_columns_map_to_half() {
        let ds = dataset_from_csv("t", "5,0,0\n5,1,1\n".as_bytes(), "5,0,0\n".as_bytes()).unwrap();
        assert_eq!(ds.train()[0].features[0], 0.5);
        assert_eq!(ds.train()[1].features[0], 0.5);
    }

    #[test]
    fn export_then_import_preserves_shape() {
        let ds = dataset_from_csv("t", TRAIN.as_bytes(), TEST.as_bytes()).unwrap();
        let mut buf = Vec::new();
        split_to_csv(ds.train(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 3);
        let reparsed = dataset_from_csv("t2", text.as_bytes(), text.as_bytes()).unwrap();
        assert_eq!(reparsed.features(), ds.features());
        assert_eq!(reparsed.num_classes(), ds.num_classes());
    }

    #[test]
    fn error_display_is_informative() {
        let e = CsvError::Ragged { line: 7 };
        assert!(e.to_string().contains('7'));
    }
}
