//! Stroke-rendered digit images for the MNIST surrogate.
//!
//! Each digit 0–9 has a 5×7 bitmap glyph (a classic font grid) that is
//! upscaled to 28×28, jittered (sub-pixel shift, stroke-thickness change,
//! pixel noise, intensity scaling) and lightly smoothed. The result is a
//! pixel grid on which the reconstruction attack of Fig. 2 / Fig. 6
//! produces visually meaningful output — unlike an abstract feature
//! cluster — while keeping the dataset fully synthetic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::{Dataset, Sample};
use crate::sampling::NormalSampler;

/// Image side length (28 → 784 features, matching MNIST).
pub const IMAGE_SIDE: usize = 28;

/// 5×7 glyph bitmaps for digits 0–9; rows top-to-bottom, bits
/// left-to-right in the low 5 bits.
const GLYPHS: [[u8; 7]; 10] = [
    // 0
    [
        0b01110, 0b10001, 0b10011, 0b10101, 0b11001, 0b10001, 0b01110,
    ],
    // 1
    [
        0b00100, 0b01100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110,
    ],
    // 2
    [
        0b01110, 0b10001, 0b00001, 0b00010, 0b00100, 0b01000, 0b11111,
    ],
    // 3
    [
        0b11111, 0b00010, 0b00100, 0b00010, 0b00001, 0b10001, 0b01110,
    ],
    // 4
    [
        0b00010, 0b00110, 0b01010, 0b10010, 0b11111, 0b00010, 0b00010,
    ],
    // 5
    [
        0b11111, 0b10000, 0b11110, 0b00001, 0b00001, 0b10001, 0b01110,
    ],
    // 6
    [
        0b00110, 0b01000, 0b10000, 0b11110, 0b10001, 0b10001, 0b01110,
    ],
    // 7
    [
        0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b01000, 0b01000,
    ],
    // 8
    [
        0b01110, 0b10001, 0b10001, 0b01110, 0b10001, 0b10001, 0b01110,
    ],
    // 9
    [
        0b01110, 0b10001, 0b10001, 0b01111, 0b00001, 0b00010, 0b01100,
    ],
];

/// Renders the clean 28×28 prototype image of a digit (values 0.0/1.0
/// before smoothing).
///
/// # Panics
///
/// Panics if `digit > 9`.
pub fn prototype(digit: usize) -> Vec<f64> {
    assert!(digit <= 9, "digit must be 0..=9");
    let glyph = &GLYPHS[digit];
    let mut img = vec![0.0f64; IMAGE_SIDE * IMAGE_SIDE];
    // Upscale 5×7 to 20×28-ish: each glyph cell becomes a 4×4 block,
    // centred with a 4-pixel left/right margin.
    for (gy, row) in glyph.iter().enumerate() {
        for gx in 0..5 {
            if row >> (4 - gx) & 1 == 1 {
                for dy in 0..4 {
                    for dx in 0..4 {
                        let y = gy * 4 + dy;
                        let x = gx * 4 + dx + 4;
                        img[y * IMAGE_SIDE + x] = 1.0;
                    }
                }
            }
        }
    }
    img
}

/// Renders a jittered sample of a digit: integer shift, pixel noise,
/// intensity scale, then a 3×3 box blur for soft strokes.
pub fn render_sample<R: Rng + ?Sized>(
    digit: usize,
    rng: &mut R,
    normal: &mut NormalSampler,
    noise: f64,
) -> Vec<f64> {
    let proto = prototype(digit);
    let shift_x: i32 = rng.gen_range(-2..=2);
    let shift_y: i32 = rng.gen_range(-2..=2);
    let intensity = 0.75 + 0.25 * rng.gen::<f64>();
    let side = IMAGE_SIDE as i32;
    let mut shifted = vec![0.0f64; proto.len()];
    for y in 0..side {
        for x in 0..side {
            let sx = x - shift_x;
            let sy = y - shift_y;
            if (0..side).contains(&sx) && (0..side).contains(&sy) {
                shifted[(y * side + x) as usize] = proto[(sy * side + sx) as usize] * intensity;
            }
        }
    }
    let blurred = box_blur(&shifted);
    blurred
        .into_iter()
        .map(|v| (v + normal.sample(rng, 0.0, noise)).clamp(0.0, 1.0))
        .collect()
}

/// 3×3 box blur with edge clamping.
fn box_blur(img: &[f64]) -> Vec<f64> {
    let side = IMAGE_SIDE as i32;
    let mut out = vec![0.0f64; img.len()];
    for y in 0..side {
        for x in 0..side {
            let mut acc = 0.0;
            let mut n = 0.0;
            for dy in -1..=1 {
                for dx in -1..=1 {
                    let sx = x + dx;
                    let sy = y + dy;
                    if (0..side).contains(&sx) && (0..side).contains(&sy) {
                        acc += img[(sy * side + sx) as usize];
                        n += 1.0;
                    }
                }
            }
            out[(y * side + x) as usize] = acc / n;
        }
    }
    out
}

/// Generates the MNIST-surrogate dataset: `train_per_class` +
/// `test_per_class` jittered renderings of each digit.
pub fn digits_dataset(train_per_class: usize, test_per_class: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut normal = NormalSampler::new();
    let noise = 0.15;
    let mut train = Vec::with_capacity(10 * train_per_class);
    let mut test = Vec::with_capacity(10 * test_per_class);
    for digit in 0..10 {
        for _ in 0..train_per_class {
            train.push(Sample {
                features: render_sample(digit, &mut rng, &mut normal, noise),
                label: digit,
            });
        }
        for _ in 0..test_per_class {
            test.push(Sample {
                features: render_sample(digit, &mut rng, &mut normal, noise),
                label: digit,
            });
        }
    }
    Dataset::new("mnist-surrogate", IMAGE_SIDE * IMAGE_SIDE, 10, train, test)
        .expect("rendered digits satisfy dataset invariants")
}

/// Renders a 28×28 image as ASCII art (darkest = `@`), for the Fig. 2 /
/// Fig. 6 visual comparisons in terminal output.
///
/// # Panics
///
/// Panics if `pixels.len() != 784`.
pub fn to_ascii(pixels: &[f64]) -> String {
    assert_eq!(
        pixels.len(),
        IMAGE_SIDE * IMAGE_SIDE,
        "expect a 28x28 image"
    );
    const RAMP: &[u8] = b" .:-=+*#%@";
    let mut out = String::with_capacity((IMAGE_SIDE + 1) * IMAGE_SIDE);
    for y in 0..IMAGE_SIDE {
        for x in 0..IMAGE_SIDE {
            let v = pixels[y * IMAGE_SIDE + x].clamp(0.0, 1.0);
            let idx = ((v * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototypes_are_binary_and_nonempty() {
        for d in 0..10 {
            let p = prototype(d);
            assert_eq!(p.len(), 784);
            let ink: f64 = p.iter().sum();
            assert!(ink > 30.0, "digit {d} has ink {ink}");
            assert!(p.iter().all(|&v| v == 0.0 || v == 1.0));
        }
    }

    #[test]
    fn prototypes_are_distinct() {
        for a in 0..10 {
            for b in (a + 1)..10 {
                let pa = prototype(a);
                let pb = prototype(b);
                let diff: f64 = pa.iter().zip(&pb).map(|(x, y)| (x - y).abs()).sum();
                assert!(diff > 10.0, "digits {a} and {b} too similar: {diff}");
            }
        }
    }

    #[test]
    fn samples_stay_normalized() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ns = NormalSampler::new();
        for d in 0..10 {
            let img = render_sample(d, &mut rng, &mut ns, 0.2);
            assert!(img.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn samples_correlate_with_their_prototype() {
        // Jitter (shift ±2) can make a single sample resemble another
        // glyph, so compare correlations averaged over several samples.
        let mut rng = StdRng::seed_from_u64(2);
        let mut ns = NormalSampler::new();
        for d in 0..10 {
            let other = (d + 5) % 10;
            let (mut own, mut cross) = (0.0, 0.0);
            for _ in 0..10 {
                let img = render_sample(d, &mut rng, &mut ns, 0.05);
                own += correlation(&img, &prototype(d));
                cross += correlation(&img, &prototype(other));
            }
            assert!(
                own > cross,
                "digit {d}: own avg {own} vs {other} avg {cross}"
            );
        }
    }

    fn correlation(a: &[f64], b: &[f64]) -> f64 {
        let ma = a.iter().sum::<f64>() / a.len() as f64;
        let mb = b.iter().sum::<f64>() / b.len() as f64;
        let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
        let va: f64 = a.iter().map(|x| (x - ma).powi(2)).sum();
        let vb: f64 = b.iter().map(|y| (y - mb).powi(2)).sum();
        cov / (va.sqrt() * vb.sqrt())
    }

    #[test]
    fn dataset_has_mnist_shape() {
        let ds = digits_dataset(5, 2, 3);
        assert_eq!(ds.features(), 784);
        assert_eq!(ds.num_classes(), 10);
        assert_eq!(ds.train().len(), 50);
        assert_eq!(ds.test().len(), 20);
    }

    #[test]
    fn dataset_is_deterministic() {
        assert_eq!(digits_dataset(3, 1, 9), digits_dataset(3, 1, 9));
        assert_ne!(digits_dataset(3, 1, 9), digits_dataset(3, 1, 10));
    }

    #[test]
    fn ascii_rendering_has_28_lines() {
        let art = to_ascii(&prototype(8));
        assert_eq!(art.lines().count(), 28);
        assert!(art.contains('@'));
    }

    #[test]
    #[should_panic(expected = "28x28")]
    fn ascii_rejects_wrong_size() {
        let _ = to_ascii(&[0.0; 100]);
    }
}
