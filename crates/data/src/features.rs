//! Feature preprocessing for real corpora.
//!
//! The encoders expect features normalized to `[0, 1]` and quantized to
//! the `ℓ_iv`-level grid of Eq. (1). Real datasets arrive in arbitrary
//! scales, so this module provides fitted normalizers (min–max and
//! robust quantile) plus level-occupancy diagnostics that tell a user
//! whether their `ℓ_iv` choice wastes levels.

use serde::{Deserialize, Serialize};

/// A per-column normalizer fitted on training data and applied to any
/// split (fitting on test data would leak).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Normalizer {
    /// Affine map of the observed `[min, max]` onto `[0, 1]`.
    MinMax {
        /// Per-column observed minimum.
        min: Vec<f64>,
        /// Per-column observed maximum.
        max: Vec<f64>,
    },
    /// Affine map of the observed `[q_low, q_high]` quantiles onto
    /// `[0, 1]` with clamping — robust to outliers.
    Quantile {
        /// Per-column low quantile value.
        low: Vec<f64>,
        /// Per-column high quantile value.
        high: Vec<f64>,
    },
}

impl Normalizer {
    /// Fits a min–max normalizer.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or ragged.
    pub fn fit_min_max(rows: &[Vec<f64>]) -> Self {
        let (min, max) = column_extents(rows);
        Normalizer::MinMax { min, max }
    }

    /// Fits a quantile normalizer at `(low_q, high_q)`, e.g.
    /// `(0.01, 0.99)`.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty/ragged or the quantiles are not
    /// `0 ≤ low_q < high_q ≤ 1`.
    pub fn fit_quantile(rows: &[Vec<f64>], low_q: f64, high_q: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&low_q) && low_q < high_q && high_q <= 1.0,
            "quantiles must satisfy 0 <= low < high <= 1"
        );
        assert!(!rows.is_empty(), "cannot fit on an empty set");
        let features = rows[0].len();
        let mut low = Vec::with_capacity(features);
        let mut high = Vec::with_capacity(features);
        for col in 0..features {
            let mut values: Vec<f64> = rows.iter().map(|r| r[col]).collect();
            values.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
            low.push(quantile(&values, low_q));
            high.push(quantile(&values, high_q));
        }
        Normalizer::Quantile { low, high }
    }

    /// Number of feature columns this normalizer was fitted on.
    pub fn features(&self) -> usize {
        match self {
            Normalizer::MinMax { min, .. } => min.len(),
            Normalizer::Quantile { low, .. } => low.len(),
        }
    }

    /// Normalizes one row into `[0, 1]` per column (clamped).
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from the fitted feature count.
    pub fn apply(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.features(), "feature count mismatch");
        let (lo, hi): (&[f64], &[f64]) = match self {
            Normalizer::MinMax { min, max } => (min, max),
            Normalizer::Quantile { low, high } => (low, high),
        };
        row.iter()
            .zip(lo.iter().zip(hi))
            .map(|(&v, (&l, &h))| {
                let span = h - l;
                if span > 0.0 {
                    ((v - l) / span).clamp(0.0, 1.0)
                } else {
                    0.5
                }
            })
            .collect()
    }

    /// Normalizes a batch of rows.
    ///
    /// # Panics
    ///
    /// Panics on a feature-count mismatch in any row.
    pub fn apply_batch(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| self.apply(r)).collect()
    }
}

/// Per-level occupancy of normalized features on the Eq. (1) grid:
/// `histogram[k]` counts values whose level index is `k`.
///
/// A heavily skewed histogram means the chosen `ℓ_iv` wastes levels
/// (the Fig. 4 legend's L50-vs-L100 effect).
pub fn level_occupancy(rows: &[Vec<f64>], levels: usize) -> Vec<usize> {
    assert!(levels >= 2, "need at least two levels");
    let mut hist = vec![0usize; levels];
    for row in rows {
        for &v in row {
            let idx = ((v.clamp(0.0, 1.0)) * levels as f64).floor() as usize;
            hist[idx.min(levels - 1)] += 1;
        }
    }
    hist
}

/// Fraction of levels that receive at least one value — the utilization
/// diagnostic.
pub fn level_utilization(rows: &[Vec<f64>], levels: usize) -> f64 {
    let hist = level_occupancy(rows, levels);
    hist.iter().filter(|c| **c > 0).count() as f64 / levels as f64
}

fn column_extents(rows: &[Vec<f64>]) -> (Vec<f64>, Vec<f64>) {
    assert!(!rows.is_empty(), "cannot fit on an empty set");
    let features = rows[0].len();
    let mut min = vec![f64::INFINITY; features];
    let mut max = vec![f64::NEG_INFINITY; features];
    for row in rows {
        assert_eq!(row.len(), features, "ragged feature rows");
        for (col, &v) in row.iter().enumerate() {
            min[col] = min[col].min(v);
            max[col] = max[col].max(v);
        }
    }
    (min, max)
}

/// Linear-interpolation quantile of a sorted slice.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let i = pos.floor() as usize;
    let frac = pos - i as f64;
    if i + 1 < sorted.len() {
        sorted[i] * (1.0 - frac) + sorted[i + 1] * frac
    } else {
        sorted[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Vec<f64>> {
        vec![vec![0.0, 100.0], vec![5.0, 200.0], vec![10.0, 300.0]]
    }

    #[test]
    fn min_max_maps_extents_to_unit_interval() {
        let n = Normalizer::fit_min_max(&rows());
        assert_eq!(n.apply(&[0.0, 100.0]), vec![0.0, 0.0]);
        assert_eq!(n.apply(&[10.0, 300.0]), vec![1.0, 1.0]);
        assert_eq!(n.apply(&[5.0, 200.0]), vec![0.5, 0.5]);
    }

    #[test]
    fn min_max_clamps_unseen_values() {
        let n = Normalizer::fit_min_max(&rows());
        let out = n.apply(&[-5.0, 500.0]);
        assert_eq!(out, vec![0.0, 1.0]);
    }

    #[test]
    fn constant_columns_map_to_half() {
        let n = Normalizer::fit_min_max(&[vec![7.0], vec![7.0]]);
        assert_eq!(n.apply(&[7.0]), vec![0.5]);
    }

    #[test]
    fn quantile_normalizer_resists_outliers() {
        let mut data: Vec<Vec<f64>> = (0..99).map(|i| vec![i as f64]).collect();
        data.push(vec![1e9]); // outlier
        let minmax = Normalizer::fit_min_max(&data);
        // 0.95 rather than 0.99: with 100 points the 99% quantile
        // already interpolates into the outlier.
        let robust = Normalizer::fit_quantile(&data, 0.05, 0.95);
        // Under min-max the bulk collapses near zero; robust keeps it
        // spread out.
        let mid_minmax = minmax.apply(&[50.0])[0];
        let mid_robust = robust.apply(&[50.0])[0];
        assert!(mid_minmax < 1e-4, "{mid_minmax}");
        assert!((0.3..0.7).contains(&mid_robust), "{mid_robust}");
    }

    #[test]
    #[should_panic(expected = "quantiles must satisfy")]
    fn bad_quantiles_rejected() {
        let _ = Normalizer::fit_quantile(&rows(), 0.9, 0.1);
    }

    #[test]
    #[should_panic(expected = "feature count mismatch")]
    fn apply_checks_arity() {
        let n = Normalizer::fit_min_max(&rows());
        let _ = n.apply(&[1.0]);
    }

    #[test]
    fn batch_matches_single_application() {
        let n = Normalizer::fit_min_max(&rows());
        let batch = n.apply_batch(&rows());
        for (r, b) in rows().iter().zip(&batch) {
            assert_eq!(&n.apply(r), b);
        }
    }

    #[test]
    fn occupancy_counts_every_value() {
        let data = vec![vec![0.0, 0.5, 1.0]];
        let hist = level_occupancy(&data, 4);
        assert_eq!(hist.iter().sum::<usize>(), 3);
        assert_eq!(hist[0], 1); // 0.0
        assert_eq!(hist[2], 1); // 0.5
        assert_eq!(hist[3], 1); // 1.0 clamps to the last level
    }

    #[test]
    fn utilization_detects_wasted_levels() {
        // Binary features use only two of many levels.
        let data: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![if i % 2 == 0 { 0.0 } else { 1.0 }])
            .collect();
        assert!(level_utilization(&data, 100) < 0.05);
        // Uniform features fill most levels.
        let dense: Vec<Vec<f64>> = (0..1000).map(|i| vec![i as f64 / 999.0]).collect();
        assert!(level_utilization(&dense, 50) > 0.95);
    }
}
