//! Seeded Gaussian sampling (Box–Muller).
//!
//! `rand` 0.8 ships only uniform distributions; the Gaussian mechanism of
//! differential privacy and the cluster generator both need normal
//! deviates, so this module provides a small, allocation-free Box–Muller
//! transformer with a cached spare value.

use rand::Rng;

/// A Gaussian sampler wrapping any [`Rng`].
///
/// # Examples
///
/// ```
/// use privehd_data::NormalSampler;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let mut normal = NormalSampler::new();
/// let x = normal.sample(&mut rng, 0.0, 1.0);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, Default)]
pub struct NormalSampler {
    spare: Option<f64>,
}

impl NormalSampler {
    /// Creates a sampler with an empty spare cache.
    pub fn new() -> Self {
        Self { spare: None }
    }

    /// Draws one `N(mean, std²)` deviate.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion) if `std` is negative.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R, mean: f64, std: f64) -> f64 {
        debug_assert!(std >= 0.0, "standard deviation must be non-negative");
        mean + std * self.standard(rng)
    }

    /// Draws one standard-normal deviate via Box–Muller.
    pub fn standard<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Box–Muller: u1 ∈ (0, 1] avoids ln(0).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Fills `out` with i.i.d. `N(mean, std²)` deviates.
    pub fn fill<R: Rng + ?Sized>(&mut self, rng: &mut R, out: &mut [f64], mean: f64, std: f64) {
        for v in out {
            *v = self.sample(rng, mean, std);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_are_correct() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut normal = NormalSampler::new();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng, 2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean = {mean}");
        assert!((var - 9.0).abs() < 0.2, "var = {var}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut ns = NormalSampler::new();
            (0..8).map(|_| ns.standard(&mut rng)).collect::<Vec<f64>>()
        };
        assert_eq!(draw(5), draw(5));
        assert_ne!(draw(5), draw(6));
    }

    #[test]
    fn spare_value_is_consumed_alternately() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut ns = NormalSampler::new();
        let _ = ns.standard(&mut rng);
        assert!(ns.spare.is_some());
        let _ = ns.standard(&mut rng);
        assert!(ns.spare.is_none());
    }

    #[test]
    fn fill_writes_every_slot() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut ns = NormalSampler::new();
        let mut buf = [f64::NAN; 33];
        ns.fill(&mut rng, &mut buf, 0.0, 1.0);
        assert!(buf.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn tail_probability_is_plausible() {
        // ~4.55% of standard normals fall beyond |2σ|.
        let mut rng = StdRng::seed_from_u64(2);
        let mut ns = NormalSampler::new();
        let n = 100_000;
        let beyond = (0..n).filter(|_| ns.standard(&mut rng).abs() > 2.0).count() as f64 / n as f64;
        assert!((beyond - 0.0455).abs() < 0.005, "tail = {beyond}");
    }
}
