//! Gaussian class-cluster generator.
//!
//! Each class gets a prototype vector; samples are the prototype plus
//! i.i.d. Gaussian noise, clamped to `[0, 1]`. Two knobs control task
//! difficulty:
//!
//! * `separation` — how far class prototypes sit from the shared
//!   background vector (larger = easier), and
//! * `noise` — the per-sample feature noise standard deviation
//!   (larger = harder).
//!
//! The surrogate constructors in [`crate::surrogates`] pick values
//! calibrated so a full-precision HD model lands in the paper's accuracy
//! band for the corresponding real dataset.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::dataset::{Dataset, Sample};
use crate::sampling::NormalSampler;

/// Specification of a synthetic cluster classification task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Dataset name used in reports.
    pub name: String,
    /// Feature count `D_iv`.
    pub features: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Prototype separation from the shared background (≥ 0).
    pub separation: f64,
    /// Per-sample feature noise standard deviation (≥ 0).
    pub noise: f64,
    /// Fraction of features that are pure background (carry no class
    /// signal), emulating the uninformative dimensions of real feature
    /// extractors. In `[0, 1)`.
    pub nuisance_fraction: f64,
    /// Master seed.
    pub seed: u64,
}

impl ClusterSpec {
    /// A reasonable default task: easy separation, mild noise.
    pub fn new(name: impl Into<String>, features: usize, num_classes: usize) -> Self {
        Self {
            name: name.into(),
            features,
            num_classes,
            train_per_class: 100,
            test_per_class: 30,
            separation: 0.25,
            noise: 0.15,
            nuisance_fraction: 0.3,
            seed: 0,
        }
    }

    /// Sets samples per class for both splits.
    #[must_use]
    pub fn with_samples(mut self, train_per_class: usize, test_per_class: usize) -> Self {
        self.train_per_class = train_per_class;
        self.test_per_class = test_per_class;
        self
    }

    /// Sets the difficulty knobs.
    #[must_use]
    pub fn with_difficulty(mut self, separation: f64, noise: f64) -> Self {
        self.separation = separation;
        self.noise = noise;
        self
    }

    /// Sets the nuisance-feature fraction.
    #[must_use]
    pub fn with_nuisance(mut self, fraction: f64) -> Self {
        self.nuisance_fraction = fraction;
        self
    }

    /// Sets the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Generator producing [`Dataset`]s from a [`ClusterSpec`].
#[derive(Debug, Clone)]
pub struct SyntheticGenerator {
    spec: ClusterSpec,
    /// Shared background vector in `[0,1]^F`.
    background: Vec<f64>,
    /// Per-class prototypes in `[0,1]^F`.
    prototypes: Vec<Vec<f64>>,
}

impl SyntheticGenerator {
    /// Draws background and prototypes from the spec's seed.
    ///
    /// # Panics
    ///
    /// Panics if the spec has zero features or zero classes.
    pub fn new(spec: ClusterSpec) -> Self {
        assert!(spec.features > 0, "spec needs at least one feature");
        assert!(spec.num_classes > 0, "spec needs at least one class");
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut normal = NormalSampler::new();
        // Background centred mid-range so clamping bites rarely.
        let background: Vec<f64> = (0..spec.features)
            .map(|_| 0.3 + 0.4 * rng.gen::<f64>())
            .collect();
        let nuisance_count = (spec.features as f64 * spec.nuisance_fraction) as usize;
        let prototypes = (0..spec.num_classes)
            .map(|_| {
                background
                    .iter()
                    .enumerate()
                    .map(|(j, &b)| {
                        if j < nuisance_count {
                            b // nuisance feature: identical across classes
                        } else {
                            (b + normal.sample(&mut rng, 0.0, spec.separation)).clamp(0.0, 1.0)
                        }
                    })
                    .collect()
            })
            .collect();
        Self {
            spec,
            background,
            prototypes,
        }
    }

    /// The spec this generator was built from.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// The class prototype vectors.
    pub fn prototypes(&self) -> &[Vec<f64>] {
        &self.prototypes
    }

    /// The shared background vector.
    pub fn background(&self) -> &[f64] {
        &self.background
    }

    /// Draws one sample of class `label` using the supplied RNG.
    ///
    /// # Panics
    ///
    /// Panics if `label >= num_classes`.
    pub fn sample_with<R: Rng + ?Sized>(
        &self,
        label: usize,
        rng: &mut R,
        normal: &mut NormalSampler,
    ) -> Sample {
        let proto = &self.prototypes[label];
        let features = proto
            .iter()
            .map(|&p| (p + normal.sample(rng, 0.0, self.spec.noise)).clamp(0.0, 1.0))
            .collect();
        Sample { features, label }
    }

    /// Generates the full dataset (train + test splits).
    pub fn generate(&self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.spec.seed.wrapping_add(1));
        let mut normal = NormalSampler::new();
        let mut train = Vec::with_capacity(self.spec.num_classes * self.spec.train_per_class);
        let mut test = Vec::with_capacity(self.spec.num_classes * self.spec.test_per_class);
        for label in 0..self.spec.num_classes {
            for _ in 0..self.spec.train_per_class {
                train.push(self.sample_with(label, &mut rng, &mut normal));
            }
            for _ in 0..self.spec.test_per_class {
                test.push(self.sample_with(label, &mut rng, &mut normal));
            }
        }
        Dataset::new(
            self.spec.name.clone(),
            self.spec.features,
            self.spec.num_classes,
            train,
            test,
        )
        .expect("generator output satisfies dataset invariants by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ClusterSpec {
        ClusterSpec::new("t", 20, 3)
            .with_samples(10, 5)
            .with_difficulty(0.3, 0.1)
            .with_seed(7)
    }

    #[test]
    fn generates_declared_shape() {
        let ds = SyntheticGenerator::new(spec()).generate();
        assert_eq!(ds.features(), 20);
        assert_eq!(ds.num_classes(), 3);
        assert_eq!(ds.train().len(), 30);
        assert_eq!(ds.test().len(), 15);
        assert_eq!(ds.class_histogram(), vec![10, 10, 10]);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticGenerator::new(spec()).generate();
        let b = SyntheticGenerator::new(spec()).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticGenerator::new(spec()).generate();
        let b = SyntheticGenerator::new(spec().with_seed(8)).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn nuisance_features_carry_no_signal() {
        let s = spec().with_nuisance(0.5);
        let gen = SyntheticGenerator::new(s);
        let protos = gen.prototypes();
        for j in 0..10 {
            // First 50% of features equal the background in every class.
            for p in protos {
                assert_eq!(p[j], gen.background()[j], "nuisance feature {j}");
            }
        }
    }

    #[test]
    fn separation_moves_prototypes_apart() {
        let near = SyntheticGenerator::new(spec().with_difficulty(0.01, 0.1));
        let far = SyntheticGenerator::new(spec().with_difficulty(0.5, 0.1));
        let dist = |g: &SyntheticGenerator| -> f64 {
            let a = &g.prototypes()[0];
            let b = &g.prototypes()[1];
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        assert!(dist(&far) > dist(&near));
    }

    #[test]
    fn samples_cluster_around_prototypes() {
        let gen = SyntheticGenerator::new(spec().with_difficulty(0.4, 0.05));
        let ds = gen.generate();
        // Mean distance to own prototype must beat distance to others.
        for s in ds.train() {
            let d_own: f64 = s
                .features
                .iter()
                .zip(&gen.prototypes()[s.label])
                .map(|(a, b)| (a - b).powi(2))
                .sum();
            for (c, proto) in gen.prototypes().iter().enumerate() {
                if c == s.label {
                    continue;
                }
                let d_other: f64 = s
                    .features
                    .iter()
                    .zip(proto)
                    .map(|(a, b)| (a - b).powi(2))
                    .sum();
                assert!(
                    d_own < d_other + 1.0,
                    "sample of class {} much closer to class {c}",
                    s.label
                );
            }
        }
    }

    #[test]
    fn all_values_normalized() {
        let ds = SyntheticGenerator::new(spec().with_difficulty(2.0, 2.0)).generate();
        for s in ds.train().iter().chain(ds.test()) {
            for &v in &s.features {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }
}
