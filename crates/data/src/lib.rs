//! # privehd-data
//!
//! Dataset substrate for the Prive-HD reproduction.
//!
//! The paper evaluates on UCI ISOLET (speech, 617 features, 26 classes),
//! MNIST (28×28 handwritten digits, 10 classes) and the Caltech web faces
//! set (608 features, 2 classes). Those corpora are not available in this
//! environment, so this crate provides *parametric synthetic surrogates*
//! with matched shape (feature count, class count, level quantization) and
//! tunable class separability, calibrated so the non-private
//! full-precision HD model reaches the paper's accuracy band. Every
//! Prive-HD claim concerns the encoding pipeline — reversibility,
//! sensitivity, quantization noise — not dataset semantics, so matching
//! shape and separability preserves the relevant behaviour (see
//! DESIGN.md §4).
//!
//! * [`synthetic`] — Gaussian class-cluster generator with controllable
//!   prototype separation and sample noise.
//! * [`digits`] — stroke-rendered 28×28 digit images for the MNIST
//!   surrogate, so the reconstruction-attack figures operate on real
//!   pixel grids (and can be rendered as ASCII art).
//! * [`surrogates`] — the three named datasets used throughout the paper:
//!   [`surrogates::isolet`], [`surrogates::face`], [`surrogates::mnist`].
//! * [`sampling`] — seeded Gaussian sampling shared with the privacy
//!   crate.
//! * [`io`] — CSV import/export so the experiments run unchanged on the
//!   real UCI/MNIST corpora when they are available.
//! * [`features`] — fitted normalizers and level-occupancy diagnostics
//!   for preprocessing real corpora onto the Eq. (1) feature grid.
//!
//! ## Example
//!
//! ```
//! use privehd_data::surrogates;
//!
//! let ds = surrogates::isolet(100, 30, 1);
//! assert_eq!(ds.features(), 617);
//! assert_eq!(ds.num_classes(), 26);
//! assert_eq!(ds.train().len(), 26 * 100);
//! ```

// No unsafe: every unsafe site in the workspace lives in privehd-core
// under the analyze unsafe-audit ledger (see docs/ANALYSIS.md).
#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod dataset;
pub mod digits;
pub mod features;
pub mod io;
pub mod sampling;
pub mod surrogates;
pub mod synthetic;

pub use dataset::{Dataset, Sample};
pub use sampling::NormalSampler;
pub use synthetic::{ClusterSpec, SyntheticGenerator};
