//! Labelled datasets with normalized features and train/test splits.

use serde::{Deserialize, Serialize};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One labelled input: normalized features in `[0, 1]` plus a class label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Feature values, each in `[0, 1]`.
    pub features: Vec<f64>,
    /// Class label in `0..num_classes`.
    pub label: usize,
}

/// A named dataset with a fixed train/test split.
///
/// Invariants enforced at construction: every sample has the same feature
/// count, every label is `< num_classes`, and every feature value lies in
/// `[0, 1]`.
///
/// # Examples
///
/// ```
/// use privehd_data::{Dataset, Sample};
///
/// let train = vec![Sample { features: vec![0.0, 1.0], label: 0 }];
/// let test = vec![Sample { features: vec![1.0, 0.0], label: 1 }];
/// let ds = Dataset::new("toy", 2, 2, train, test).unwrap();
/// assert_eq!(ds.features(), 2);
/// assert_eq!(ds.test().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    name: String,
    features: usize,
    num_classes: usize,
    train: Vec<Sample>,
    test: Vec<Sample>,
}

/// Construction error for [`Dataset`].
#[derive(Debug, Clone, PartialEq)]
pub enum DatasetError {
    /// A sample's feature count disagreed with the declared one.
    FeatureCount {
        /// Declared feature count.
        expected: usize,
        /// Offending sample's feature count.
        actual: usize,
    },
    /// A label was out of range.
    Label {
        /// Offending label.
        label: usize,
        /// Declared class count.
        num_classes: usize,
    },
    /// A feature value fell outside `[0, 1]` (or was not finite).
    Range {
        /// The offending value.
        value: f64,
    },
    /// The training split was empty.
    EmptyTrain,
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetError::FeatureCount { expected, actual } => {
                write!(
                    f,
                    "sample has {actual} features, dataset declares {expected}"
                )
            }
            DatasetError::Label { label, num_classes } => {
                write!(f, "label {label} out of range for {num_classes} classes")
            }
            DatasetError::Range { value } => {
                write!(
                    f,
                    "feature value {value} outside the normalized range [0, 1]"
                )
            }
            DatasetError::EmptyTrain => write!(f, "training split is empty"),
        }
    }
}

impl std::error::Error for DatasetError {}

impl Dataset {
    /// Validates and assembles a dataset.
    ///
    /// # Errors
    ///
    /// Returns a [`DatasetError`] describing the first violated invariant.
    pub fn new(
        name: impl Into<String>,
        features: usize,
        num_classes: usize,
        train: Vec<Sample>,
        test: Vec<Sample>,
    ) -> Result<Self, DatasetError> {
        if train.is_empty() {
            return Err(DatasetError::EmptyTrain);
        }
        for s in train.iter().chain(&test) {
            if s.features.len() != features {
                return Err(DatasetError::FeatureCount {
                    expected: features,
                    actual: s.features.len(),
                });
            }
            if s.label >= num_classes {
                return Err(DatasetError::Label {
                    label: s.label,
                    num_classes,
                });
            }
            for &v in &s.features {
                if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                    return Err(DatasetError::Range { value: v });
                }
            }
        }
        Ok(Self {
            name: name.into(),
            features,
            num_classes,
            train,
            test,
        })
    }

    /// Dataset name (e.g. `"isolet-surrogate"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Feature count `D_iv`.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Training split.
    pub fn train(&self) -> &[Sample] {
        &self.train
    }

    /// Test split.
    pub fn test(&self) -> &[Sample] {
        &self.test
    }

    /// A copy with the training split subsampled to `fraction`
    /// (stratified per class, deterministic in `seed`) — the Fig. 8(d)
    /// data-size sweep.
    ///
    /// `fraction` is clamped to `(0, 1]`; at least one sample per
    /// populated class is retained.
    pub fn subsample_train(&self, fraction: f64, seed: u64) -> Self {
        let fraction = fraction.clamp(1e-9, 1.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut per_class: Vec<Vec<&Sample>> = vec![Vec::new(); self.num_classes];
        for s in &self.train {
            per_class[s.label].push(s);
        }
        let mut train = Vec::new();
        for mut class_samples in per_class {
            if class_samples.is_empty() {
                continue;
            }
            class_samples.shuffle(&mut rng);
            let keep = ((class_samples.len() as f64 * fraction).round() as usize).max(1);
            train.extend(class_samples.into_iter().take(keep).cloned());
        }
        Self {
            name: format!("{}@{:.0}%", self.name, fraction * 100.0),
            features: self.features,
            num_classes: self.num_classes,
            train,
            test: self.test.clone(),
        }
    }

    /// Per-class training sample counts.
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for s in &self.train {
            counts[s.label] += 1;
        }
        counts
    }

    /// Borrowing views `(features, label)` over the training split — the
    /// shape the encoders consume.
    pub fn train_pairs(&self) -> impl Iterator<Item = (&[f64], usize)> {
        self.train.iter().map(|s| (s.features.as_slice(), s.label))
    }

    /// Borrowing views `(features, label)` over the test split.
    pub fn test_pairs(&self) -> impl Iterator<Item = (&[f64], usize)> {
        self.test.iter().map(|s| (s.features.as_slice(), s.label))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(label: usize, v: f64) -> Sample {
        Sample {
            features: vec![v, v],
            label,
        }
    }

    #[test]
    fn validates_feature_count() {
        let bad = vec![Sample {
            features: vec![0.5],
            label: 0,
        }];
        assert_eq!(
            Dataset::new("x", 2, 1, bad, vec![]),
            Err(DatasetError::FeatureCount {
                expected: 2,
                actual: 1
            })
        );
    }

    #[test]
    fn validates_label_range() {
        let bad = vec![sample(3, 0.5)];
        assert!(matches!(
            Dataset::new("x", 2, 2, bad, vec![]),
            Err(DatasetError::Label { .. })
        ));
    }

    #[test]
    fn validates_value_range() {
        let bad = vec![sample(0, 1.5)];
        assert!(matches!(
            Dataset::new("x", 2, 1, bad, vec![]),
            Err(DatasetError::Range { .. })
        ));
        let nan = vec![sample(0, f64::NAN)];
        assert!(matches!(
            Dataset::new("x", 2, 1, nan, vec![]),
            Err(DatasetError::Range { .. })
        ));
    }

    #[test]
    fn rejects_empty_train() {
        assert_eq!(
            Dataset::new("x", 2, 1, vec![], vec![]),
            Err(DatasetError::EmptyTrain)
        );
    }

    #[test]
    fn subsample_is_stratified_and_deterministic() {
        let train: Vec<Sample> = (0..100)
            .map(|i| sample(i % 2, (i % 10) as f64 / 10.0))
            .collect();
        let ds = Dataset::new("x", 2, 2, train, vec![]).unwrap();
        let half = ds.subsample_train(0.5, 3);
        assert_eq!(half.train().len(), 50);
        let hist = half.class_histogram();
        assert_eq!(hist, vec![25, 25]);
        let again = ds.subsample_train(0.5, 3);
        assert_eq!(half.train(), again.train());
    }

    #[test]
    fn subsample_keeps_at_least_one_per_class() {
        let train = vec![sample(0, 0.1), sample(1, 0.9)];
        let ds = Dataset::new("x", 2, 2, train, vec![]).unwrap();
        let tiny = ds.subsample_train(0.001, 1);
        assert_eq!(tiny.train().len(), 2);
    }

    #[test]
    fn pairs_views_match_splits() {
        let ds = Dataset::new("x", 2, 1, vec![sample(0, 0.2)], vec![sample(0, 0.4)]).unwrap();
        assert_eq!(ds.train_pairs().count(), 1);
        assert_eq!(ds.test_pairs().count(), 1);
        let (f, y) = ds.train_pairs().next().unwrap();
        assert_eq!(f, &[0.2, 0.2]);
        assert_eq!(y, 0);
    }

    #[test]
    fn error_messages_render() {
        let e = DatasetError::Range { value: 2.0 };
        assert!(e.to_string().contains("2"));
    }
}
