//! Property-based tests for the dataset substrate.

use proptest::prelude::*;

use privehd_data::{digits, ClusterSpec, Dataset, NormalSampler, Sample, SyntheticGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generator_shapes_follow_spec(
        features in 1usize..64,
        classes in 1usize..8,
        train in 1usize..12,
        test in 0usize..6,
        seed in 0u64..1_000,
    ) {
        let ds = SyntheticGenerator::new(
            ClusterSpec::new("p", features, classes)
                .with_samples(train, test)
                .with_seed(seed),
        )
        .generate();
        prop_assert_eq!(ds.features(), features);
        prop_assert_eq!(ds.num_classes(), classes);
        prop_assert_eq!(ds.train().len(), classes * train);
        prop_assert_eq!(ds.test().len(), classes * test);
        for s in ds.train().iter().chain(ds.test()) {
            prop_assert!(s.label < classes);
            for &v in &s.features {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn subsample_fraction_respected(frac in 0.05f64..1.0, seed in 0u64..100) {
        let train: Vec<Sample> = (0..200)
            .map(|i| Sample { features: vec![(i % 10) as f64 / 10.0], label: i % 4 })
            .collect();
        let ds = Dataset::new("p", 1, 4, train, vec![]).unwrap();
        let sub = ds.subsample_train(frac, seed);
        let expected = (50.0 * frac).round() as usize * 4;
        // Per-class rounding may shift the total by at most `classes`.
        prop_assert!((sub.train().len() as i64 - expected as i64).abs() <= 4);
        // Stratification: class counts differ by at most 1 from each other.
        let hist = sub.class_histogram();
        let min = hist.iter().min().unwrap();
        let max = hist.iter().max().unwrap();
        prop_assert!(max - min <= 1);
    }

    #[test]
    fn normal_sampler_is_deterministic_and_finite(seed in 0u64..10_000, mean in -10.0f64..10.0, std in 0.0f64..10.0) {
        let draw = || {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut ns = NormalSampler::new();
            (0..16).map(|_| ns.sample(&mut rng, mean, std)).collect::<Vec<_>>()
        };
        let a = draw();
        let b = draw();
        prop_assert_eq!(&a, &b);
        for v in a {
            prop_assert!(v.is_finite());
        }
    }

    #[test]
    fn rendered_digits_are_valid_images(digit in 0usize..10, seed in 0u64..1_000, noise in 0.0f64..0.5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ns = NormalSampler::new();
        let img = digits::render_sample(digit, &mut rng, &mut ns, noise);
        prop_assert_eq!(img.len(), 784);
        for v in img {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn ascii_render_never_panics_on_valid_images(seed in 0u64..1_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ns = NormalSampler::new();
        let img = digits::render_sample((seed % 10) as usize, &mut rng, &mut ns, 0.2);
        let art = digits::to_ascii(&img);
        prop_assert_eq!(art.lines().count(), 28);
    }
}
